"""Unit tests for repro.codes.optimal — exact arrangement optimality."""

import pytest

from repro.codes import (
    ArrangedHotCode,
    GrayCode,
    HotCode,
    TreeCode,
)
from repro.codes.optimal import (
    OptimalSearchError,
    gray_sigma_lower_bound,
    minimise_phi_arrangement,
    minimise_sigma_arrangement,
    phi_cost_of_order,
    sigma_cost_of_order,
    verify_gray_exact_optimality,
)
from repro.decoder.variability import code_variability, sigma_norm1


class TestSigmaCostIdentity:
    """The closed-form ||nu||_1 identity against the matrix pipeline."""

    @pytest.mark.parametrize(
        "space",
        [
            TreeCode(2, 3),
            GrayCode(2, 3),
            GrayCode(3, 2),
            HotCode(2, 2),
            ArrangedHotCode(2, 2),
        ],
        ids=lambda s: s.name,
    )
    def test_identity_matches_matrices(self, space):
        identity = sigma_cost_of_order(space, list(range(space.size)))
        matrices = sigma_norm1(code_variability(space, space.size, sigma_t=1.0))
        assert identity == matrices

    def test_identity_on_rearrangements(self):
        space = TreeCode(2, 2)
        for order in ([0, 1, 2, 3], [3, 1, 0, 2], [2, 3, 0, 1]):
            identity = sigma_cost_of_order(space, order)
            reordered = space.rearranged(order)
            matrices = sigma_norm1(code_variability(reordered, space.size, sigma_t=1.0))
            assert identity == matrices


class TestExactSigmaOptimum:
    @pytest.mark.parametrize("n,m", [(2, 2), (2, 3), (3, 2)])
    def test_gray_attains_global_optimum(self, n, m):
        """Prop. 4, certified over the whole permutation space."""
        assert verify_gray_exact_optimality(n, m)

    def test_lower_bound_matches_gray(self):
        gray = GrayCode(2, 3)
        assert sigma_cost_of_order(gray, list(range(gray.size))) == (
            gray_sigma_lower_bound(gray)
        )

    def test_counting_order_is_suboptimal(self):
        tree = TreeCode(2, 3)
        optimum = minimise_sigma_arrangement(tree)
        counting = sigma_cost_of_order(tree, list(range(tree.size)))
        assert optimum.cost < counting

    def test_optimum_is_a_permutation(self):
        result = minimise_sigma_arrangement(TreeCode(2, 2))
        assert sorted(result.order) == list(range(4))

    def test_arranged_hot_attains_optimum(self):
        """Sec. 5.2: the distance-2 arrangement is globally optimal."""
        ahc = ArrangedHotCode(2, 2)
        cost = sigma_cost_of_order(ahc, list(range(ahc.size)))
        assert cost == minimise_sigma_arrangement(ahc).cost

    def test_budget_exceeded_raises(self):
        with pytest.raises(OptimalSearchError):
            minimise_sigma_arrangement(TreeCode(2, 3), node_budget=5)


class TestExactPhiOptimum:
    @pytest.mark.parametrize("n,m", [(2, 2), (2, 3)])
    def test_gray_attains_phi_optimum_binary(self, n, m):
        """Prop. 5, certified over the whole permutation space."""
        gray = GrayCode(n, m)
        gray_phi = phi_cost_of_order(gray, list(range(gray.size)))
        assert gray_phi == minimise_phi_arrangement(gray).cost

    def test_ternary_boundary_effect_is_at_most_one_step(self):
        """Documented deviation from the paper's Prop. 5 proof.

        Phi counts *distinct dose values*, so the direct doping of the
        last-defined wire costs fewer steps when that wire's pattern is
        constant (e.g. the reflected ternary word 1111 needs one dose).
        An arrangement exploiting this can undercut Gray by exactly this
        final-row term; the transition part of Phi — what the paper's
        proof actually bounds — is still minimised by Gray.
        """
        gray = GrayCode(3, 2)
        gray_phi = phi_cost_of_order(gray, list(range(gray.size)))
        optimum = minimise_phi_arrangement(gray)
        assert optimum.cost <= gray_phi <= optimum.cost + 1

    def test_phi_cost_matches_plan_pipeline(self):
        space = TreeCode(2, 2)
        order = [2, 0, 3, 1]
        from repro.fabrication.complexity import fabrication_complexity
        from repro.fabrication.doping import DopingPlan, default_digit_map

        plan = DopingPlan.from_code(
            space.rearranged(order), space.size, default_digit_map(2)
        )
        assert phi_cost_of_order(space, order) == fabrication_complexity(plan.steps)

    def test_budget_exceeded_raises(self):
        # ternary space: the root bound does not close the search, so a
        # tiny budget is actually consumed
        with pytest.raises(OptimalSearchError):
            minimise_phi_arrangement(GrayCode(3, 2), node_budget=5)

    def test_two_word_space(self):
        small = HotCode(2, 1)  # words (0,1) and (1,0)
        result = minimise_phi_arrangement(small)
        assert sorted(result.order) == list(range(small.size))
