"""Property-based tests (hypothesis) for the code-space layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.base import (
    complement_word,
    covers,
    hamming_distance,
    is_antichain,
    reflect_word,
)
from repro.codes.gray import GrayCode, gray_rank
from repro.codes.hot import hot_words
from repro.codes.metrics import (
    digit_transition_counts,
    step_transitions,
    total_transitions,
)
from repro.codes.tree import TreeCode, int_to_word, word_to_int

valences = st.integers(min_value=2, max_value=5)
lengths = st.integers(min_value=1, max_value=5)


@st.composite
def word_and_valence(draw):
    n = draw(valences)
    m = draw(lengths)
    word = tuple(draw(st.integers(0, n - 1)) for _ in range(m))
    return word, n


@given(word_and_valence())
def test_complement_is_involution(data):
    word, n = data
    assert complement_word(complement_word(word, n), n) == word


@given(word_and_valence())
def test_reflected_word_has_constant_digit_sum(data):
    word, n = data
    reflected = reflect_word(word, n)
    assert sum(reflected) == len(word) * (n - 1)


@given(word_and_valence())
def test_reflection_halves_are_complements(data):
    word, n = data
    reflected = reflect_word(word, n)
    m = len(word)
    assert complement_word(reflected[:m], n) == reflected[m:]


@given(word_and_valence(), word_and_valence())
def test_hamming_symmetry(a_data, b_data):
    a, n1 = a_data
    b, _ = b_data
    if len(a) == len(b):
        assert hamming_distance(a, b) == hamming_distance(b, a)


@given(word_and_valence())
def test_covers_is_reflexive(data):
    word, _ = data
    assert covers(word, word)


@given(valences, st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_tree_code_reflection_gives_antichain(n, m):
    tc = TreeCode(n, m)
    assert is_antichain(tc.pattern_words())


@given(st.integers(min_value=2, max_value=3), st.integers(min_value=1, max_value=4))
@settings(max_examples=20, deadline=None)
def test_gray_code_single_digit_steps(n, m):
    words = list(GrayCode(n, m).words)
    assert all(d == 1 for d in step_transitions(words))


@given(st.integers(min_value=2, max_value=3), st.integers(min_value=1, max_value=4))
@settings(max_examples=20, deadline=None)
def test_gray_rank_bijective(n, m):
    words = list(GrayCode(n, m).words)
    ranks = sorted(gray_rank(w, n) for w in words)
    assert ranks == list(range(len(words)))


@given(valences, lengths, st.integers(min_value=0, max_value=10**6))
def test_int_word_roundtrip(n, m, value):
    value %= n**m
    assert word_to_int(int_to_word(value, n, m), n) == value


@given(st.integers(min_value=2, max_value=3), st.integers(min_value=1, max_value=3))
@settings(max_examples=15, deadline=None)
def test_hot_words_constant_multiplicity(n, k):
    from collections import Counter

    for w in hot_words(n, k):
        counts = Counter(w)
        assert all(counts[v] == k for v in range(n))


@given(st.integers(min_value=2, max_value=3), st.integers(min_value=1, max_value=3))
@settings(max_examples=15, deadline=None)
def test_hot_words_are_antichain(n, k):
    assert is_antichain(hot_words(n, k))


@st.composite
def word_sequences(draw):
    n = draw(st.integers(2, 4))
    m = draw(st.integers(1, 4))
    count = draw(st.integers(2, 8))
    return [tuple(draw(st.integers(0, n - 1)) for _ in range(m)) for _ in range(count)]


@given(word_sequences())
def test_total_transitions_equals_per_digit_sum(words):
    assert total_transitions(words) == sum(digit_transition_counts(words))


@given(word_sequences())
def test_step_transitions_bounded_by_length(words):
    m = len(words[0])
    assert all(0 <= d <= m for d in step_transitions(words))
