"""Unit tests for repro.codes.reflect."""

import pytest

from repro.codes.base import reflect_word
from repro.codes.reflect import (
    digit_sum,
    is_reflected_form,
    reflect_space,
    unreflect_word,
)
from repro.codes.tree import TreeCode


class TestUnreflect:
    def test_roundtrip(self):
        w = (0, 2, 1)
        assert unreflect_word(reflect_word(w, 3), 3) == w

    def test_rejects_odd_length(self):
        with pytest.raises(ValueError):
            unreflect_word((0, 1, 2), 3)

    def test_rejects_non_reflected(self):
        with pytest.raises(ValueError):
            unreflect_word((0, 1, 0, 1), 2)  # tail is not complement


class TestIsReflectedForm:
    def test_positive(self):
        assert is_reflected_form((0, 1, 1, 0), 2)

    def test_negative(self):
        assert not is_reflected_form((0, 1, 0, 1), 2)
        assert not is_reflected_form((0, 1, 1), 2)


class TestDigitSum:
    def test_reflected_words_share_digit_sum(self):
        tc = TreeCode(3, 2)
        sums = {digit_sum(p) for p in tc.pattern_words()}
        assert len(sums) == 1

    def test_plain_sum(self):
        assert digit_sum((1, 2, 3)) == 6


class TestReflectSpace:
    def test_explicit_space_matches_patterns(self):
        tc = TreeCode(2, 2)
        explicit = reflect_space(tc)
        assert not explicit.reflected
        assert list(explicit.words) == tc.pattern_words()
        assert explicit.family == tc.family

    def test_explicit_space_is_antichain(self):
        assert reflect_space(TreeCode(2, 3)).is_uniquely_addressable()
