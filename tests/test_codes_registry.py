"""Unit tests for repro.codes.registry."""

import pytest

from repro.codes.base import CodeError
from repro.codes.registry import (
    ALL_FAMILIES,
    HOT_FAMILIES,
    TREE_FAMILIES,
    family_lengths,
    make_code,
    shortest_covering_code,
)


class TestMakeCode:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_builds_every_family(self, family):
        length = 8 if family in TREE_FAMILIES else 6
        space = make_code(family, 2, length)
        assert space.family == family
        assert space.total_length == length

    def test_case_insensitive(self):
        assert make_code("bgc", 2, 8).family == "BGC"

    def test_sizes(self):
        assert make_code("TC", 2, 8).size == 16
        assert make_code("HC", 2, 6).size == 20
        assert make_code("HC", 2, 8).size == 70

    def test_unknown_family(self):
        with pytest.raises(CodeError):
            make_code("XYZ", 2, 8)

    def test_tree_families_reject_odd_length(self):
        for family in TREE_FAMILIES:
            with pytest.raises(CodeError):
                make_code(family, 2, 7)

    def test_hot_families_require_divisibility(self):
        for family in HOT_FAMILIES:
            with pytest.raises(CodeError):
                make_code(family, 2, 5)


class TestFamilyLengths:
    def test_defaults(self):
        assert family_lengths("TC") == (6, 8, 10)
        assert family_lengths("AHC") == (4, 6, 8)

    def test_override(self):
        assert family_lengths("TC", (2, 4)) == (2, 4)

    def test_unknown(self):
        with pytest.raises(CodeError):
            family_lengths("XYZ")


class TestShortestCoveringCode:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_covers_count(self, family):
        space = shortest_covering_code(family, 2, 10)
        assert space.size >= 10

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_is_minimal(self, family):
        space = shortest_covering_code(family, 2, 10)
        # one size smaller must not cover
        if family in TREE_FAMILIES:
            smaller = 2 ** (space.length - 1)
        else:
            from repro.codes.hot import hot_code_size

            smaller = hot_code_size(2, space.total_length // 2 - 1)
        assert smaller < 10

    def test_unknown(self):
        with pytest.raises(CodeError):
            shortest_covering_code("XYZ", 2, 10)
