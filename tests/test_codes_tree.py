"""Unit tests for repro.codes.tree."""

import pytest

from repro.codes.base import CodeError
from repro.codes.reflect import digit_sum
from repro.codes.tree import TreeCode, counting_words, int_to_word, word_to_int


class TestIntWordConversion:
    def test_int_to_word_binary(self):
        assert int_to_word(5, 2, 4) == (0, 1, 0, 1)

    def test_int_to_word_ternary(self):
        assert int_to_word(7, 3, 3) == (0, 2, 1)

    def test_word_to_int_roundtrip(self):
        for n in (2, 3, 4):
            for v in range(n**3):
                assert word_to_int(int_to_word(v, n, 3), n) == v

    def test_int_to_word_rejects_overflow(self):
        with pytest.raises(CodeError):
            int_to_word(8, 2, 3)

    def test_int_to_word_rejects_negative(self):
        with pytest.raises(CodeError):
            int_to_word(-1, 2, 3)

    def test_word_to_int_rejects_bad_digit(self):
        with pytest.raises(CodeError):
            word_to_int((0, 3), 3)


class TestCountingWords:
    def test_counting_order(self):
        assert counting_words(2, 2) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_size(self):
        assert len(counting_words(3, 3)) == 27

    def test_rejects_zero_length(self):
        with pytest.raises(CodeError):
            counting_words(2, 0)


class TestTreeCode:
    def test_space_is_complete(self):
        tc = TreeCode(3, 2)
        assert tc.size == 9
        assert len(set(tc.words)) == 9

    def test_is_reflected_family(self):
        tc = TreeCode(2, 3)
        assert tc.reflected
        assert tc.total_length == 6
        assert tc.family == "TC"

    def test_pattern_words_have_constant_digit_sum(self):
        tc = TreeCode(3, 2)
        sums = {digit_sum(tc.pattern_word(i)) for i in range(tc.size)}
        assert sums == {2 * (3 - 1)}

    def test_uniquely_addressable_after_reflection(self):
        assert TreeCode(2, 3).is_uniquely_addressable()
        assert TreeCode(3, 2).is_uniquely_addressable()

    def test_from_total_length(self):
        tc = TreeCode.from_total_length(2, 8)
        assert tc.length == 4
        assert tc.total_length == 8

    def test_from_total_length_rejects_odd(self):
        with pytest.raises(CodeError):
            TreeCode.from_total_length(2, 7)

    def test_shortest_covering(self):
        assert TreeCode.shortest_covering(2, 10).length == 4   # 2^4 = 16 >= 10
        assert TreeCode.shortest_covering(3, 10).length == 3   # 3^3 = 27 >= 10
        assert TreeCode.shortest_covering(4, 10).length == 2   # 4^2 = 16 >= 10

    def test_shortest_covering_exact_fit(self):
        assert TreeCode.shortest_covering(2, 8).length == 3
