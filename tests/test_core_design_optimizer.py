"""Unit tests for repro.core.design, objectives and optimizer."""

import pytest

from repro.codes import make_code
from repro.core.design import DecoderDesign
from repro.core.objectives import OBJECTIVES, get_objective
from repro.core.optimizer import explore_designs, optimize_design


class TestDecoderDesign:
    def test_build_by_name(self):
        design = DecoderDesign.build("BGC", total_length=10)
        assert design.space.family == "BGC"
        assert design.space.total_length == 10

    def test_headline_properties_consistent(self, spec):
        design = DecoderDesign.build("GC", 8, spec=spec)
        assert design.cave_yield == pytest.approx(design.yield_report.cave_yield)
        assert design.bit_area_nm2 == pytest.approx(
            design.area_report.effective_bit_area_nm2
        )
        assert design.effective_bits <= spec.raw_bits

    def test_variability_map_shape(self, spec):
        design = DecoderDesign.build("TC", 8, spec=spec)
        assert design.variability_map.shape == (20, 8)

    def test_floorplan_uses_group_count(self, spec):
        design = DecoderDesign.build("TC", 6, spec=spec)  # Omega=8 -> 3 groups
        assert design.floorplan.groups_per_half_cave == 3

    def test_summary_fields(self, spec):
        s = DecoderDesign.build("AHC", 6, spec=spec).summary()
        assert s["family"] == "AHC"
        assert s["code_space"] == 20
        assert s["phi"] > 0
        assert 0 < s["cave_yield"] <= 1


class TestObjectives:
    def test_registry_complete(self):
        assert set(OBJECTIVES) == {"complexity", "variability", "yield", "bit_area"}

    def test_lookup_case_insensitive(self):
        assert get_objective("Yield") is OBJECTIVES["yield"]

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_objective("nope")

    def test_costs_match_design_figures(self, spec):
        code = make_code("BGC", 2, 8)
        design = DecoderDesign(space=code, spec=spec)
        assert OBJECTIVES["complexity"](spec, code) == design.fabrication_complexity
        assert OBJECTIVES["variability"](spec, code) == pytest.approx(design.sigma_norm)
        assert OBJECTIVES["yield"](spec, code) == pytest.approx(-design.cave_yield)
        assert OBJECTIVES["bit_area"](spec, code) == pytest.approx(design.bit_area_nm2)


class TestExploreDesigns:
    def test_skips_inadmissible_lengths(self, spec):
        result = explore_designs("yield", families=("TC",), lengths=(5, 6), spec=spec)
        assert [p.design.space.total_length for p in result.points] == [6]

    def test_best_is_minimum_cost(self, spec):
        result = explore_designs("bit_area", spec=spec)
        costs = [p.cost for p in result.points]
        assert result.best.cost == min(costs)

    def test_ranking_sorted(self, spec):
        ranking = explore_designs("yield", spec=spec).ranking()
        assert all(a.cost <= b.cost for a, b in zip(ranking, ranking[1:]))

    def test_empty_space_raises(self, spec):
        with pytest.raises(ValueError):
            explore_designs("yield", families=("TC",), lengths=(5,), spec=spec)

    def test_labels(self, spec):
        result = explore_designs("yield", families=("BGC",), lengths=(8,), spec=spec)
        assert result.points[0].label == "BGC/8"


class TestOptimizeDesign:
    def test_yield_optimum_is_optimised_family(self, spec):
        """The paper's conclusion: BGC/AHC designs win."""
        best = optimize_design("yield", spec=spec)
        assert best.space.family in ("BGC", "AHC")

    def test_bit_area_optimum_near_paper(self, spec):
        best = optimize_design("bit_area", spec=spec)
        assert best.space.family in ("BGC", "AHC")
        assert best.bit_area_nm2 == pytest.approx(170, rel=0.15)

    def test_variability_optimum_prefers_gray_family(self, spec):
        best = optimize_design(
            "variability", families=("TC", "GC", "BGC"), lengths=(8,), spec=spec
        )
        assert best.space.family in ("GC", "BGC")
