"""Unit tests for repro.core.theorems — executable Props. 1-5."""

import pytest

from repro.core.theorems import (
    check_all,
    check_arranged_hot_optimality,
    check_prop1_bijection,
    check_prop2_accumulation,
    check_prop4_gray_minimises_variability,
    check_prop5_gray_minimises_complexity,
)
from repro.fabrication.doping import DopingPlan, default_digit_map


class TestProp1:
    def test_default_map_is_bijection(self):
        assert check_prop1_bijection(default_digit_map(2))
        assert check_prop1_bijection(default_digit_map(3))
        assert check_prop1_bijection(default_digit_map(4))


class TestProp2:
    def test_accumulation_for_every_family(self):
        from repro.codes import make_code

        for family, length in [("TC", 6), ("GC", 8), ("BGC", 8), ("HC", 6)]:
            plan = DopingPlan.from_code(
                make_code(family, 2, length), 15, default_digit_map(2)
            )
            assert check_prop2_accumulation(plan)


class TestProp4And5:
    @pytest.mark.parametrize("n,m", [(2, 2), (2, 3), (3, 2)])
    def test_gray_minimises_variability(self, n, m):
        assert check_prop4_gray_minimises_variability(n, m)

    @pytest.mark.parametrize("n,m", [(2, 2), (2, 3), (3, 2)])
    def test_gray_minimises_complexity(self, n, m):
        assert check_prop5_gray_minimises_complexity(n, m)

    def test_holds_for_partial_half_caves(self):
        """The optimality also holds when N < Omega (fewer rows used)."""
        assert check_prop4_gray_minimises_variability(2, 3, nanowires=5)
        assert check_prop5_gray_minimises_complexity(2, 3, nanowires=5)

    def test_counting_order_strictly_worse_somewhere(self):
        """Sanity: the comparison is not vacuous — TC really loses."""
        from repro.codes import GrayCode, TreeCode
        from repro.decoder.variability import code_variability, sigma_norm1

        tc = sigma_norm1(code_variability(TreeCode(2, 3), 8))
        gc = sigma_norm1(code_variability(GrayCode(2, 3), 8))
        assert gc < tc


class TestArrangedHotOptimality:
    @pytest.mark.parametrize("n,k", [(2, 2), (2, 3), (3, 1)])
    def test_arranged_never_loses(self, n, k):
        assert check_arranged_hot_optimality(n, k)


class TestCheckAll:
    def test_every_proposition_passes(self):
        results = check_all()
        assert all(results.values())
        assert set(results) == {
            "prop1_bijection",
            "prop2_accumulation",
            "prop4_gray_variability",
            "prop5_gray_complexity",
            "prop4_exact_optimum",
            "prop5_exact_optimum",
            "arranged_hot_optimality",
        }
