"""Unit tests for repro.crossbar.array — the end-to-end integration object."""

import numpy as np
import pytest

from repro.codes import make_code
from repro.crossbar.array import AddressingFault, CrossbarArray
from repro.crossbar.readout import ReadoutModel


@pytest.fixture(scope="module")
def array():
    from repro.crossbar.spec import CrossbarSpec

    return CrossbarArray(CrossbarSpec(), make_code("BGC", 2, 10), seed=42)


def accessible_cell(array, start_row=0, start_col=0):
    rows, cols = array.shape
    for r in range(start_row, rows):
        for c in range(start_col, cols):
            if array.is_accessible(r, c):
                return r, c
    raise AssertionError("no accessible crosspoint found")


def inaccessible_row(array):
    for r in range(array.shape[0]):
        if not array.defects.row_ok[r]:
            return r
    raise AssertionError("no defective row in this sample")


class TestConstruction:
    def test_shape_matches_spec(self, array):
        assert array.shape == (363, 363)

    def test_summary(self, array):
        s = array.summary()
        assert 0 < s["accessible_fraction"] <= 1
        assert s["bank_wires"] == 40
        assert s["readout_scheme"] == "float"


class TestAddressing:
    def test_every_wire_has_address(self, array):
        for wire in (0, 17, 100, array.address_map.wire_count - 1):
            addr = array.row_address(wire)
            assert array.address_map.wire_of(addr) == wire

    def test_access_to_defective_row_raises(self, array):
        r = inaccessible_row(array)
        c = accessible_cell(array)[1]
        with pytest.raises(AddressingFault):
            array.write_bit(r, c, True)

    def test_out_of_range_raises(self, array):
        with pytest.raises(AddressingFault):
            array.read_bit(9999, 0)

    def test_is_accessible_bounds(self, array):
        assert not array.is_accessible(-1, 0)
        assert not array.is_accessible(0, 99999)


class TestElectricalBitAccess:
    def test_bit_roundtrip_through_readout(self, array):
        r, c = accessible_cell(array)
        array.write_bit(r, c, True)
        assert array.read_bit(r, c) is True
        array.write_bit(r, c, False)
        assert array.read_bit(r, c) is False

    def test_roundtrip_with_busy_background(self, array, rng):
        """Reads stay correct with the surrounding bank full of ONes —
        the worst sneak-path scenario the threshold is designed for."""
        r, c = accessible_cell(array)
        r0 = (r // 40) * 40
        c0 = (c // 40) * 40
        rows, cols, bits = [], [], []
        for i in range(r0, min(r0 + 40, array.shape[0])):
            for j in range(c0, min(c0 + 40, array.shape[1])):
                rows.append(i)
                cols.append(j)
                bits.append(True)
        array.write_pattern(np.array(rows), np.array(cols), np.array(bits))

        if array.is_accessible(r, c):
            array.write_bit(r, c, False)
            assert array.read_bit(r, c) is False
            array.write_bit(r, c, True)
            assert array.read_bit(r, c) is True

    def test_read_margin_positive_and_background_dependent(self, array):
        r, c = accessible_cell(array)
        r0 = (r // 40) * 40
        c0 = (c // 40) * 40
        rows, cols = np.meshgrid(
            np.arange(r0, min(r0 + 40, array.shape[0])),
            np.arange(c0, min(c0 + 40, array.shape[1])),
        )
        # quiet bank: everything OFF (the fixture is shared, so reset)
        array.write_pattern(rows, cols, np.zeros_like(rows, dtype=bool))
        quiet = array.read_margin(r, c)
        assert quiet > 0
        # busy bank: the sneak pedestal shrinks the margin
        array.write_pattern(rows, cols, np.ones_like(rows, dtype=bool))
        busy = array.read_margin(r, c)
        assert 0 < busy < quiet

    def test_grounded_scheme_also_works(self):
        from repro.crossbar.spec import CrossbarSpec

        quiet = CrossbarArray(
            CrossbarSpec(),
            make_code("BGC", 2, 10),
            seed=7,
            readout=ReadoutModel(scheme="ground"),
        )
        r, c = accessible_cell(quiet)
        quiet.write_bit(r, c, True)
        assert quiet.read_bit(r, c) is True


class TestWritePattern:
    def test_skips_inaccessible(self, array, rng):
        rows = np.arange(50)
        cols = np.arange(50)
        bits = np.ones(50, dtype=bool)
        written = array.write_pattern(rows, cols, bits)
        accessible = sum(
            1 for r, c in zip(rows, cols) if array.is_accessible(int(r), int(c))
        )
        assert written == accessible

    def test_shape_mismatch_raises(self, array):
        with pytest.raises(ValueError):
            array.write_pattern(np.arange(3), np.arange(2), np.ones(3, bool))

    def test_duplicate_crosspoints_last_write_wins(self, array, rng):
        """Regression: duplicate-index scatter must keep the *last*
        write per crosspoint, not whatever NumPy fancy-assignment
        happens to apply (satellite bugfix)."""
        base = [accessible_cell(array, start_row=k) for k in (0, 5, 11)]
        idx = rng.integers(0, len(base), size=40)
        rows = np.array([base[i][0] for i in idx])
        cols = np.array([base[i][1] for i in idx])
        bits = rng.random(40) < 0.5
        written = array.write_pattern(rows, cols, bits)
        assert written == 40
        expected = {}
        for r, c, b in zip(rows, cols, bits):
            expected[(int(r), int(c))] = bool(b)
        for (r, c), b in expected.items():
            assert array.stored_bit(r, c) == b

    def test_alternating_duplicates_settle_on_last(self, array):
        r, c = accessible_cell(array)
        n = 9
        assert (
            array.write_pattern(
                np.full(n, r), np.full(n, c), np.arange(n) % 2 == 0
            )
            == n
        )
        assert array.stored_bit(r, c) is True  # last bit: index 8, even


class _ZeroCurrentReadout:
    """Duck-typed readout whose reference currents collapse to zero."""

    def read_current(self, states, row, col):
        return 0.0

    def read_currents(self, states, cells):
        return np.zeros(len(np.asarray(cells).reshape(-1, 2)))


class TestReferenceCurrentGuards:
    """Regression: read_bit and read_bits must both reject a
    non-positive reference current, like read_margin(s) always did
    (satellite bugfix)."""

    def make_dead_array(self):
        from repro.crossbar.spec import CrossbarSpec

        dead = CrossbarArray(
            CrossbarSpec(raw_kilobytes=0.2), make_code("TC", 2, 6), seed=3
        )
        dead.readout = _ZeroCurrentReadout()
        return dead

    def test_read_bit_rejects_nonpositive_reference(self):
        dead = self.make_dead_array()
        r, c = accessible_cell(dead)
        with pytest.raises(AddressingFault, match="non-positive reference"):
            dead.read_bit(r, c)

    def test_read_bits_rejects_nonpositive_reference(self):
        dead = self.make_dead_array()
        r, c = accessible_cell(dead)
        with pytest.raises(AddressingFault, match="non-positive reference"):
            dead.read_bits([r], [c])

    def test_read_margin_paths_reject_nonpositive_reference(self):
        dead = self.make_dead_array()
        r, c = accessible_cell(dead)
        with pytest.raises(AddressingFault, match="non-positive reference"):
            dead.read_margin(r, c)
        with pytest.raises(AddressingFault, match="non-positive reference"):
            dead.read_margins([r], [c])


class TestFleetDefectInjection:
    def test_injected_defects_are_used(self):
        from repro.crossbar.defects import DefectMap
        from repro.crossbar.spec import CrossbarSpec

        spec = CrossbarSpec(raw_kilobytes=0.2)
        side = spec.side_nanowires
        row_ok = np.ones(side, dtype=bool)
        row_ok[0] = False
        dm = DefectMap(row_ok=row_ok, col_ok=np.ones(side, dtype=bool))
        arr = CrossbarArray(spec, make_code("TC", 2, 6), defects=dm)
        assert not arr.is_accessible(0, 0)
        assert arr.is_accessible(1, 0)

    def test_shape_mismatch_rejected(self):
        from repro.crossbar.defects import DefectMap
        from repro.crossbar.spec import CrossbarSpec

        dm = DefectMap(
            row_ok=np.ones(4, dtype=bool), col_ok=np.ones(4, dtype=bool)
        )
        with pytest.raises(ValueError, match="does not match"):
            CrossbarArray(CrossbarSpec(raw_kilobytes=0.2), make_code("TC", 2, 6), defects=dm)
