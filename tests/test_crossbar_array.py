"""Unit tests for repro.crossbar.array — the end-to-end integration object."""

import numpy as np
import pytest

from repro.codes import make_code
from repro.crossbar.array import AddressingFault, CrossbarArray
from repro.crossbar.readout import ReadoutModel


@pytest.fixture(scope="module")
def array():
    from repro.crossbar.spec import CrossbarSpec

    return CrossbarArray(CrossbarSpec(), make_code("BGC", 2, 10), seed=42)


def accessible_cell(array, start_row=0, start_col=0):
    rows, cols = array.shape
    for r in range(start_row, rows):
        for c in range(start_col, cols):
            if array.is_accessible(r, c):
                return r, c
    raise AssertionError("no accessible crosspoint found")


def inaccessible_row(array):
    for r in range(array.shape[0]):
        if not array.defects.row_ok[r]:
            return r
    raise AssertionError("no defective row in this sample")


class TestConstruction:
    def test_shape_matches_spec(self, array):
        assert array.shape == (363, 363)

    def test_summary(self, array):
        s = array.summary()
        assert 0 < s["accessible_fraction"] <= 1
        assert s["bank_wires"] == 40
        assert s["readout_scheme"] == "float"


class TestAddressing:
    def test_every_wire_has_address(self, array):
        for wire in (0, 17, 100, array.address_map.wire_count - 1):
            addr = array.row_address(wire)
            assert array.address_map.wire_of(addr) == wire

    def test_access_to_defective_row_raises(self, array):
        r = inaccessible_row(array)
        c = accessible_cell(array)[1]
        with pytest.raises(AddressingFault):
            array.write_bit(r, c, True)

    def test_out_of_range_raises(self, array):
        with pytest.raises(AddressingFault):
            array.read_bit(9999, 0)

    def test_is_accessible_bounds(self, array):
        assert not array.is_accessible(-1, 0)
        assert not array.is_accessible(0, 99999)


class TestElectricalBitAccess:
    def test_bit_roundtrip_through_readout(self, array):
        r, c = accessible_cell(array)
        array.write_bit(r, c, True)
        assert array.read_bit(r, c) is True
        array.write_bit(r, c, False)
        assert array.read_bit(r, c) is False

    def test_roundtrip_with_busy_background(self, array, rng):
        """Reads stay correct with the surrounding bank full of ONes —
        the worst sneak-path scenario the threshold is designed for."""
        r, c = accessible_cell(array)
        r0 = (r // 40) * 40
        c0 = (c // 40) * 40
        rows, cols, bits = [], [], []
        for i in range(r0, min(r0 + 40, array.shape[0])):
            for j in range(c0, min(c0 + 40, array.shape[1])):
                rows.append(i)
                cols.append(j)
                bits.append(True)
        array.write_pattern(np.array(rows), np.array(cols), np.array(bits))

        if array.is_accessible(r, c):
            array.write_bit(r, c, False)
            assert array.read_bit(r, c) is False
            array.write_bit(r, c, True)
            assert array.read_bit(r, c) is True

    def test_read_margin_positive_and_background_dependent(self, array):
        r, c = accessible_cell(array)
        r0 = (r // 40) * 40
        c0 = (c // 40) * 40
        rows, cols = np.meshgrid(
            np.arange(r0, min(r0 + 40, array.shape[0])),
            np.arange(c0, min(c0 + 40, array.shape[1])),
        )
        # quiet bank: everything OFF (the fixture is shared, so reset)
        array.write_pattern(rows, cols, np.zeros_like(rows, dtype=bool))
        quiet = array.read_margin(r, c)
        assert quiet > 0
        # busy bank: the sneak pedestal shrinks the margin
        array.write_pattern(rows, cols, np.ones_like(rows, dtype=bool))
        busy = array.read_margin(r, c)
        assert 0 < busy < quiet

    def test_grounded_scheme_also_works(self):
        from repro.crossbar.spec import CrossbarSpec

        quiet = CrossbarArray(
            CrossbarSpec(),
            make_code("BGC", 2, 10),
            seed=7,
            readout=ReadoutModel(scheme="ground"),
        )
        r, c = accessible_cell(quiet)
        quiet.write_bit(r, c, True)
        assert quiet.read_bit(r, c) is True


class TestWritePattern:
    def test_skips_inaccessible(self, array, rng):
        rows = np.arange(50)
        cols = np.arange(50)
        bits = np.ones(50, dtype=bool)
        written = array.write_pattern(rows, cols, bits)
        accessible = sum(
            1 for r, c in zip(rows, cols) if array.is_accessible(int(r), int(c))
        )
        assert written == accessible

    def test_shape_mismatch_raises(self, array):
        with pytest.raises(ValueError):
            array.write_pattern(np.arange(3), np.arange(2), np.ones(3, bool))
