"""Unit tests for repro.crossbar.defects and repro.crossbar.memory."""

import numpy as np
import pytest

from repro.codes import make_code
from repro.crossbar.defects import DefectMap, sample_defect_map, sample_layer_mask
from repro.crossbar.memory import CapacityError, CrossbarMemory


class TestDefectMap:
    def test_working_is_outer_and(self):
        dm = DefectMap(
            row_ok=np.array([True, False]), col_ok=np.array([True, True, False])
        )
        assert dm.shape == (2, 3)
        assert dm.working_bits == 1 * 2
        assert dm.working.sum() == 2

    def test_crosspoint_yield(self):
        dm = DefectMap(row_ok=np.array([True, True]), col_ok=np.array([True, False]))
        assert dm.crosspoint_yield == pytest.approx(0.5)

    def test_rejects_non_1d(self):
        with pytest.raises(ValueError):
            DefectMap(row_ok=np.ones((2, 2), bool), col_ok=np.ones(2, bool))


class TestSampleDefectMap:
    def test_layer_mask_length(self, spec, rng):
        mask = sample_layer_mask(spec, make_code("BGC", 2, 8), rng)
        assert mask.size == spec.side_nanowires

    def test_deterministic_with_seed(self, spec):
        code = make_code("BGC", 2, 8)
        a = sample_defect_map(spec, code, seed=2)
        b = sample_defect_map(spec, code, seed=2)
        assert np.array_equal(a.row_ok, b.row_ok)
        assert np.array_equal(a.col_ok, b.col_ok)

    def test_yield_close_to_analytic_square(self, spec):
        from repro.crossbar.yield_model import crossbar_yield

        code = make_code("BGC", 2, 10)
        dm = sample_defect_map(spec, code, seed=9)
        analytic = crossbar_yield(spec, code).cave_yield ** 2
        assert dm.crosspoint_yield == pytest.approx(analytic, abs=0.05)


class TestCrossbarMemory:
    def tiny_memory(self):
        dm = DefectMap(
            row_ok=np.array([True, False, True]),
            col_ok=np.array([True, True, False]),
        )
        return CrossbarMemory(dm)

    def test_capacity(self):
        mem = self.tiny_memory()
        assert mem.capacity_bits == 4  # 2 rows x 2 cols
        assert mem.raw_bits == 9
        assert mem.efficiency == pytest.approx(4 / 9)

    def test_bit_roundtrip(self):
        mem = self.tiny_memory()
        mem.write(0, True)
        mem.write(3, True)
        assert mem.read(0) and mem.read(3)
        assert not mem.read(1)

    def test_bits_land_on_working_crosspoints(self):
        mem = self.tiny_memory()
        for addr in range(mem.capacity_bits):
            mem.write(addr, True)
        stored = mem._data
        assert stored[1, :].sum() == 0  # broken row untouched
        assert stored[:, 2].sum() == 0  # broken column untouched

    def test_block_roundtrip(self, rng):
        mem = self.tiny_memory()
        bits = rng.integers(0, 2, 4).astype(bool)
        mem.write_block(0, bits)
        assert np.array_equal(mem.read_block(0, 4), bits)

    def test_out_of_range_raises(self):
        mem = self.tiny_memory()
        with pytest.raises(CapacityError):
            mem.read(4)
        with pytest.raises(CapacityError):
            mem.write(-1, True)
        with pytest.raises(CapacityError):
            mem.write_block(2, np.ones(5, bool))
        with pytest.raises(CapacityError):
            mem.read_block(3, 2)

    def test_full_pipeline_roundtrip(self, spec, rng):
        """Integration: sampled crossbar stores and recovers a payload."""
        code = make_code("BGC", 2, 10)
        mem = CrossbarMemory(sample_defect_map(spec, code, seed=4))
        payload = rng.integers(0, 2, 2048).astype(bool)
        mem.write_block(0, payload)
        assert np.array_equal(mem.read_block(0, 2048), payload)
