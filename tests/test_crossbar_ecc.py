"""Unit tests for repro.crossbar.ecc — SECDED over the crossbar memory."""

import numpy as np
import pytest

from repro.crossbar.defects import DefectMap
from repro.crossbar.ecc import EccError, EccMemory, SecdedCode
from repro.crossbar.memory import CrossbarMemory


@pytest.fixture
def code():
    return SecdedCode(parity_bits=3)  # (8, 4) extended Hamming


def perfect_memory(bits: int) -> CrossbarMemory:
    side = int(np.ceil(np.sqrt(bits)))
    return CrossbarMemory(
        DefectMap(row_ok=np.ones(side, bool), col_ok=np.ones(side, bool))
    )


class TestSecdedCode:
    def test_parameters(self, code):
        assert code.data_bits == 4
        assert code.block_bits == 8

    def test_default_is_64_57(self):
        default = SecdedCode()
        assert default.block_bits == 64
        assert default.data_bits == 57

    def test_rejects_tiny_codes(self):
        with pytest.raises(EccError):
            SecdedCode(parity_bits=1)

    def test_encode_decode_roundtrip(self, code, rng):
        for _ in range(16):
            data = rng.integers(0, 2, code.data_bits).astype(bool)
            decoded, corrected = code.decode(code.encode(data))
            assert np.array_equal(decoded, data)
            assert corrected == -1

    def test_every_single_error_corrected(self, code, rng):
        data = rng.integers(0, 2, code.data_bits).astype(bool)
        block = code.encode(data)
        for pos in range(code.block_bits):
            corrupted = block.copy()
            corrupted[pos] = ~corrupted[pos]
            decoded, corrected = code.decode(corrupted)
            assert np.array_equal(decoded, data), f"bit {pos}"
            assert corrected == pos

    def test_double_errors_detected(self, code, rng):
        data = rng.integers(0, 2, code.data_bits).astype(bool)
        block = code.encode(data)
        # flip two distinct non-overall positions
        for a, b in [(1, 2), (3, 7), (2, 6)]:
            corrupted = block.copy()
            corrupted[a] = ~corrupted[a]
            corrupted[b] = ~corrupted[b]
            with pytest.raises(EccError):
                code.decode(corrupted)

    def test_encode_rejects_wrong_width(self, code):
        with pytest.raises(EccError):
            code.encode(np.zeros(5, bool))

    def test_decode_rejects_wrong_width(self, code):
        with pytest.raises(EccError):
            code.decode(np.zeros(7, bool))


class TestEccMemory:
    def test_capacity_accounting(self, code):
        mem = EccMemory(perfect_memory(64), code)
        assert mem.block_count == mem._memory.capacity_bits // 8
        assert mem.capacity_bits == mem.block_count * 4

    def test_roundtrip(self, code, rng):
        mem = EccMemory(perfect_memory(64), code)
        payloads = [
            rng.integers(0, 2, code.data_bits).astype(bool)
            for _ in range(mem.block_count)
        ]
        for i, p in enumerate(payloads):
            mem.write_block(i, p)
        for i, p in enumerate(payloads):
            assert np.array_equal(mem.read_block(i), p)
        assert mem.corrections == 0

    def test_single_fault_transparent(self, code, rng):
        mem = EccMemory(perfect_memory(64), code)
        data = rng.integers(0, 2, code.data_bits).astype(bool)
        mem.write_block(0, data)
        mem.inject_bit_error(0, 5)
        assert np.array_equal(mem.read_block(0), data)
        assert mem.corrections == 1

    def test_double_fault_raises(self, code, rng):
        mem = EccMemory(perfect_memory(64), code)
        mem.write_block(0, rng.integers(0, 2, code.data_bits).astype(bool))
        mem.inject_bit_error(0, 2)
        mem.inject_bit_error(0, 6)
        with pytest.raises(EccError):
            mem.read_block(0)

    def test_block_bounds(self, code):
        mem = EccMemory(perfect_memory(64), code)
        with pytest.raises(EccError):
            mem.write_block(mem.block_count, np.zeros(4, bool))
        with pytest.raises(EccError):
            mem.read_block(-1)
        with pytest.raises(EccError):
            mem.inject_bit_error(0, 8)

    def test_on_sampled_crossbar(self, spec, rng):
        """End to end: SECDED over a defective sampled crossbar."""
        from repro.codes import make_code
        from repro.crossbar.defects import sample_defect_map

        defects = sample_defect_map(spec, make_code("BGC", 2, 10), seed=21)
        mem = EccMemory(CrossbarMemory(defects))
        data = rng.integers(0, 2, mem.code.data_bits).astype(bool)
        mem.write_block(0, data)
        mem.inject_bit_error(0, 30)
        assert np.array_equal(mem.read_block(0), data)
