"""Unit tests for repro.crossbar.montecarlo."""

import numpy as np
import pytest

from repro.codes import make_code
from repro.crossbar.montecarlo import (
    sample_electrical_mask,
    sample_geometric_mask,
    simulate_cave_yield,
)
from repro.crossbar.yield_model import crossbar_yield, decoder_for


class TestSampleMasks:
    def test_electrical_mask_shape(self, spec, rng):
        decoder = decoder_for(spec, make_code("BGC", 2, 8))
        mask = sample_electrical_mask(decoder, rng)
        assert mask.shape == (20,)
        assert mask.dtype == bool

    def test_geometric_mask_single_group_all_pass(self, spec, rng):
        decoder = decoder_for(spec, make_code("BGC", 2, 10))  # Omega = 32 > 20
        mask = sample_geometric_mask(decoder, rng)
        assert mask.all()

    def test_geometric_mask_removes_boundary_wires(self, spec, rng):
        decoder = decoder_for(spec, make_code("TC", 2, 6))  # 3 groups
        mask = sample_geometric_mask(decoder, rng)
        assert not mask.all()
        # losses concentrated near the two boundaries at wires ~6-7, ~13-14
        lost = np.flatnonzero(~mask)
        assert all(3 <= i <= 17 for i in lost)


class TestSimulateCaveYield:
    def test_deterministic_with_seed(self, spec):
        code = make_code("BGC", 2, 8)
        a = simulate_cave_yield(spec, code, samples=50, seed=3)
        b = simulate_cave_yield(spec, code, samples=50, seed=3)
        assert a.mean_cave_yield == b.mean_cave_yield

    def test_agrees_with_analytic(self, spec):
        """The MC simulator validates the analytic independence model."""
        for family, length in [("TC", 8), ("BGC", 10), ("HC", 6)]:
            code = make_code(family, 2, length)
            mc = simulate_cave_yield(spec, code, samples=400, seed=11)
            analytic = crossbar_yield(spec, code).cave_yield
            assert mc.mean_cave_yield == pytest.approx(
                analytic, abs=max(0.03, 4 * mc.stderr)
            )

    def test_components_reported(self, spec):
        mc = simulate_cave_yield(spec, make_code("TC", 2, 6), samples=100, seed=5)
        assert 0 < mc.mean_electrical_yield <= 1
        assert 0 < mc.mean_geometric_yield <= 1
        assert mc.mean_cave_yield <= min(
            mc.mean_electrical_yield, mc.mean_geometric_yield
        ) + 1e-9

    def test_stderr_shrinks_with_samples(self, spec):
        code = make_code("TC", 2, 8)
        small = simulate_cave_yield(spec, code, samples=50, seed=1)
        large = simulate_cave_yield(spec, code, samples=800, seed=1)
        assert large.stderr < small.stderr

    def test_rejects_zero_samples(self, spec):
        with pytest.raises(ValueError):
            simulate_cave_yield(spec, make_code("TC", 2, 8), samples=0)

    def test_single_sample_has_zero_stderr(self, spec):
        for method in ("batched", "loop"):
            mc = simulate_cave_yield(
                spec, make_code("TC", 2, 8), samples=1, seed=2, method=method
            )
            assert mc.std_cave_yield == 0.0
            assert mc.stderr == 0.0

    def test_methods_agree_statistically(self, spec):
        code = make_code("BGC", 2, 8)
        batched = simulate_cave_yield(spec, code, samples=2000, seed=3)
        loop = simulate_cave_yield(spec, code, samples=500, seed=3, method="loop")
        assert batched.mean_cave_yield == pytest.approx(
            loop.mean_cave_yield, abs=4 * (batched.stderr + loop.stderr)
        )

    def test_batched_masks_carry_trial_axis(self, spec, rng):
        decoder = decoder_for(spec, make_code("BGC", 2, 8))
        masks = sample_electrical_mask(decoder, rng, trials=6)
        assert masks.shape == (6, 20)
        assert masks.dtype == bool
