"""Unit tests for repro.crossbar.readout — sneak paths and margins."""

import numpy as np
import pytest

from repro.crossbar.readout import (
    ReadoutError,
    ReadoutModel,
    margin_vs_bank_size,
    max_bank_size,
)


@pytest.fixture
def model():
    return ReadoutModel(r_on=1e5, r_off=1e7, v_read=0.5, scheme="float")


class TestConstruction:
    def test_rejects_bad_resistances(self):
        with pytest.raises(ReadoutError):
            ReadoutModel(r_on=0)
        with pytest.raises(ReadoutError):
            ReadoutModel(r_on=1e6, r_off=1e5)

    def test_rejects_bad_scheme(self):
        with pytest.raises(ReadoutError):
            ReadoutModel(scheme="weird")

    def test_rejects_bad_voltage(self):
        with pytest.raises(ReadoutError):
            ReadoutModel(v_read=0)


class TestSingleCell:
    def test_isolated_cell_is_ohms_law(self, model):
        states = np.array([[True]])
        i = model.read_current(states, 0, 0)
        assert i == pytest.approx(model.v_read / model.r_on, rel=1e-9)

    def test_off_cell_current(self, model):
        states = np.array([[False]])
        i = model.read_current(states, 0, 0)
        assert i == pytest.approx(model.v_read / model.r_off, rel=1e-9)

    def test_selection_bounds(self, model):
        with pytest.raises(ReadoutError):
            model.read_current(np.ones((2, 2), bool), 2, 0)


class TestGroundedScheme:
    def test_ground_scheme_isolates_cell(self):
        """With all unselected lines grounded there is no sneak current."""
        model = ReadoutModel(scheme="ground")
        big = np.ones((16, 16), dtype=bool)
        i_on = model.read_current(big, 3, 5)
        assert i_on == pytest.approx(model.v_read / model.r_on, rel=1e-6)

        big[3, 5] = False
        i_off = model.read_current(big, 3, 5)
        assert i_off == pytest.approx(model.v_read / model.r_off, rel=1e-6)

    def test_ground_margin_size_independent(self):
        model = ReadoutModel(scheme="ground")
        m4 = model.sense_margin(4, 4)
        m32 = model.sense_margin(32, 32)
        assert m4 == pytest.approx(m32, rel=1e-6)


class TestFloatingScheme:
    def test_sneak_inflates_off_current(self, model):
        """A selected OFF cell reads high because of sneak paths."""
        states = np.ones((8, 8), dtype=bool)
        states[0, 0] = False
        i_off = model.read_current(states, 0, 0)
        isolated_off = model.v_read / model.r_off
        assert i_off > 5 * isolated_off

    def test_margin_degrades_with_size(self, model):
        margins = [m for _, m in margin_vs_bank_size(model, (2, 4, 8, 16, 32))]
        assert all(b < a for a, b in zip(margins, margins[1:]))

    def test_grounded_beats_both_floating_schemes(self):
        ground = ReadoutModel(scheme="ground").sense_margin(16, 16)
        floating = ReadoutModel(scheme="float").sense_margin(16, 16)
        half_v = ReadoutModel(scheme="half_v").sense_margin(16, 16)
        assert ground > floating
        assert ground > half_v

    def test_half_v_adds_column_pedestal(self):
        """V/2 biasing drives a constant pedestal current through the
        selected column's half-selected cells, raising the OFF read."""
        states = np.ones((16, 16), dtype=bool)
        states[0, 0] = False
        floating = ReadoutModel(scheme="float").read_current(states, 0, 0)
        half_v = ReadoutModel(scheme="half_v").read_current(states, 0, 0)
        assert half_v > floating

    def test_sneak_path_scaling_matches_theory(self, model):
        """For an all-ON n x n array the sneak resistance is the classic
        three-segment series R/(n-1) + R/(n-1)^2 + R/(n-1)."""
        n = 16
        r = model.r_on
        sneak = 2 * r / (n - 1) + r / (n - 1) ** 2
        expected_current = model.v_read * (1 / r + 1 / sneak)
        i_on = model.read_current(np.ones((n, n), bool), 0, 0)
        assert i_on == pytest.approx(expected_current, rel=0.05)


class TestMarginHelpers:
    def test_worst_case_ordering(self, model):
        i_on, i_off = model.worst_case_currents(8, 8)
        assert i_on > i_off > 0

    def test_max_bank_size_monotone_in_floor(self, model):
        large = max_bank_size(model, min_margin=0.2)
        small = max_bank_size(model, min_margin=0.8)
        assert large >= small

    def test_max_bank_size_respects_floor(self, model):
        size = max_bank_size(model, min_margin=0.5)
        assert size >= 2
        assert model.sense_margin(size, size) >= 0.5

    def test_rejects_bad_floor(self, model):
        with pytest.raises(ReadoutError):
            max_bank_size(model, min_margin=0.0)

    def test_rejects_empty_bank(self, model):
        with pytest.raises(ReadoutError):
            model.sense_margin(0, 4)

    def test_cave_sized_banks_beat_monolithic_arrays(self, model):
        """Why arrays are segmented: a half-cave-sized bank (20 wires)
        keeps several times the floating-scheme margin of a large bank."""
        cave = model.sense_margin(20, 20)
        monolithic = model.sense_margin(64, 64)
        assert cave > 3 * monolithic
