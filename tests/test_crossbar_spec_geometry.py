"""Unit tests for repro.crossbar.spec and repro.crossbar.geometry."""

import pytest

from repro.crossbar.geometry import CrossbarFloorplan
from repro.crossbar.spec import CrossbarSpec


class TestCrossbarSpec:
    def test_paper_defaults(self, spec):
        assert spec.raw_bits == 131072  # 16 kB
        assert spec.nanowires_per_half_cave == 20
        assert spec.rules.litho_pitch_nm == 32.0
        assert spec.sigma_t == 0.05

    def test_side_covers_density(self, spec):
        assert spec.side_nanowires**2 >= spec.raw_bits
        assert (spec.side_nanowires - 1) ** 2 < spec.raw_bits

    def test_half_cave_partition(self, spec):
        assert (
            spec.half_caves_per_layer * spec.nanowires_per_half_cave
            >= spec.side_nanowires
        )

    def test_caves_half_of_half_caves(self, spec):
        assert spec.caves_per_layer == -(-spec.half_caves_per_layer // 2)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CrossbarSpec(raw_kilobytes=0)
        with pytest.raises(ValueError):
            CrossbarSpec(nanowires_per_half_cave=0)
        with pytest.raises(ValueError):
            CrossbarSpec(sigma_t=0)


class TestCrossbarFloorplan:
    def floorplan(self, spec, m=10, g=1):
        return CrossbarFloorplan(spec=spec, code_length=m, groups_per_half_cave=g)

    def test_side_length_composition(self, spec):
        fp = self.floorplan(spec)
        assert fp.side_length_nm == pytest.approx(
            fp.core_span_nm
            + fp.cave_wall_span_nm
            + fp.mesowire_span_nm
            + fp.contact_span_nm
        )

    def test_core_span(self, spec):
        fp = self.floorplan(spec)
        assert fp.core_span_nm == pytest.approx(spec.side_nanowires * 10.0)

    def test_area_is_square(self, spec):
        fp = self.floorplan(spec)
        assert fp.total_area_nm2 == pytest.approx(fp.side_length_nm**2)

    def test_longer_codes_cost_area(self, spec):
        short = self.floorplan(spec, m=6)
        long = self.floorplan(spec, m=10)
        assert long.total_area_nm2 > short.total_area_nm2

    def test_more_groups_cost_area(self, spec):
        few = self.floorplan(spec, g=1)
        many = self.floorplan(spec, g=4)
        assert many.total_area_nm2 > few.total_area_nm2

    def test_raw_bit_area_in_plausible_range(self, spec):
        """P_N = 10 nm crosspoints: ~100 nm^2 core + decoder overhead."""
        fp = self.floorplan(spec)
        assert 100 < fp.raw_bit_area_nm2 < 250

    def test_overhead_fraction_bounds(self, spec):
        fp = self.floorplan(spec)
        assert 0 < fp.decoder_overhead_fraction < 0.5

    def test_rejects_bad_parameters(self, spec):
        with pytest.raises(ValueError):
            self.floorplan(spec, m=0)
        with pytest.raises(ValueError):
            self.floorplan(spec, g=0)
