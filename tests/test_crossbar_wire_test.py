"""Unit tests for repro.crossbar.wire_test — the operational test flow."""

import numpy as np
import pytest

from repro.codes import make_code
from repro.crossbar.wire_test import (
    expected_pass_fraction,
    measure_defect_map,
    probe_half_cave,
    probe_layer,
)
from repro.crossbar.yield_model import crossbar_yield, decoder_for


class TestHalfCaveTest:
    def test_report_fields(self, spec, rng):
        decoder = decoder_for(spec, make_code("BGC", 2, 8))
        report = probe_half_cave(decoder, rng)
        assert report.passed.shape == (20,)
        assert report.passed.dtype == bool
        assert report.electrical_failures >= 0
        assert report.geometric_failures >= 0

    def test_failure_accounting_partitions_failures(self, spec, rng):
        """geometric_failures only counts electrically-good wires, so the
        two categories partition the failed set exactly."""
        decoder = decoder_for(spec, make_code("TC", 2, 6))
        report = probe_half_cave(decoder, rng)
        total_failed = int((~report.passed).sum())
        assert total_failed == (report.electrical_failures + report.geometric_failures)

    def test_deterministic_given_rng_state(self, spec):
        decoder = decoder_for(spec, make_code("BGC", 2, 8))
        a = probe_half_cave(decoder, np.random.default_rng(5)).passed
        b = probe_half_cave(decoder, np.random.default_rng(5)).passed
        assert np.array_equal(a, b)


class TestLayerAndMap:
    def test_layer_mask_length(self, spec, rng):
        mask = probe_layer(spec, make_code("BGC", 2, 8), rng)
        assert mask.size == spec.side_nanowires

    def test_measured_map_shape(self, spec):
        dm = measure_defect_map(spec, make_code("BGC", 2, 10), seed=3)
        assert dm.shape == (spec.side_nanowires, spec.side_nanowires)

    def test_measured_map_deterministic(self, spec):
        code = make_code("BGC", 2, 10)
        a = measure_defect_map(spec, code, seed=9)
        b = measure_defect_map(spec, code, seed=9)
        assert np.array_equal(a.row_ok, b.row_ok)

    def test_measured_map_feeds_memory(self, spec, rng):
        from repro.crossbar.memory import CrossbarMemory

        dm = measure_defect_map(spec, make_code("BGC", 2, 10), seed=1)
        mem = CrossbarMemory(dm)
        bits = rng.integers(0, 2, 128).astype(bool)
        mem.write_block(0, bits)
        assert np.array_equal(mem.read_block(0, 128), bits)


class TestConsistencyWithAnalyticModel:
    @pytest.mark.parametrize("family,length", [("TC", 8), ("BGC", 10), ("HC", 6)])
    def test_measured_pass_fraction_matches_fig7(self, spec, family, length):
        """The operational test flow converges to the analytic yield."""
        code = make_code(family, 2, length)
        measured = expected_pass_fraction(spec, code, samples=200, seed=17)
        analytic = crossbar_yield(spec, code).cave_yield
        assert measured == pytest.approx(analytic, abs=0.04)
