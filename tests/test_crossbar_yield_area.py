"""Unit tests for repro.crossbar.yield_model and repro.crossbar.area."""

import pytest

from repro.codes import make_code
from repro.crossbar.area import effective_bit_area, family_area_sweep
from repro.crossbar.spec import CrossbarSpec
from repro.crossbar.yield_model import (
    crossbar_yield,
    decoder_for,
    family_yield_sweep,
)


class TestCrossbarYield:
    def test_report_fields(self, spec):
        report = crossbar_yield(spec, make_code("BGC", 2, 8))
        assert report.code_length == 8
        assert report.code_space == 16
        assert 0 < report.cave_yield <= 1
        assert report.crosspoint_yield == pytest.approx(report.cave_yield**2)
        assert report.effective_bits == pytest.approx(
            report.raw_bits * report.cave_yield**2
        )

    def test_effective_never_exceeds_raw(self, spec):
        for family, length in [("TC", 6), ("BGC", 10), ("HC", 6)]:
            report = crossbar_yield(spec, make_code(family, 2, length))
            assert report.effective_bits <= report.raw_bits

    def test_decoder_for_uses_spec_knobs(self):
        spec = CrossbarSpec(sigma_t=0.06, window_margin=0.8)
        decoder = decoder_for(spec, make_code("GC", 2, 8))
        assert decoder.sigma_t == 0.06
        assert decoder.scheme.window_margin == 0.8

    def test_family_sweep_lengths(self, spec):
        reports = family_yield_sweep(spec, "TC", (6, 8, 10))
        assert [r.code_length for r in reports] == [6, 8, 10]


class TestPaperYieldOrderings:
    """The qualitative Fig. 7 relations that must hold."""

    def test_tc_yield_increases_with_length(self, spec):
        reports = family_yield_sweep(spec, "TC", (6, 8, 10))
        ys = [r.cave_yield for r in reports]
        assert ys[0] < ys[1] < ys[2]

    def test_bgc_beats_tc_at_every_length(self, spec):
        tc = family_yield_sweep(spec, "TC", (6, 8, 10))
        bgc = family_yield_sweep(spec, "BGC", (6, 8, 10))
        for t, b in zip(tc, bgc):
            assert b.cave_yield > t.cave_yield

    def test_ahc_beats_hc_at_every_length(self, spec):
        hc = family_yield_sweep(spec, "HC", (4, 6, 8))
        ahc = family_yield_sweep(spec, "AHC", (4, 6, 8))
        for h, a in zip(hc, ahc):
            assert a.cave_yield > h.cave_yield

    def test_hot_codes_jump_at_length6(self, spec):
        """HC/AHC yield rises steeply from M=4 (Omega=6) to M=6 (Omega=20)."""
        reports = family_yield_sweep(spec, "HC", (4, 6))
        assert reports[1].cave_yield > 1.5 * reports[0].cave_yield


class TestEffectiveBitArea:
    def test_report_fields(self, spec):
        report = effective_bit_area(spec, make_code("BGC", 2, 10))
        assert report.effective_bit_area_nm2 > report.raw_bit_area_nm2
        assert report.cave_yield > 0

    def test_area_relation(self, spec):
        report = effective_bit_area(spec, make_code("BGC", 2, 10))
        assert report.effective_bit_area_nm2 == pytest.approx(
            report.raw_bit_area_nm2 / report.cave_yield**2
        )

    def test_family_sweep(self, spec):
        reports = family_area_sweep(spec, "AHC", (4, 6, 8))
        assert [r.code_length for r in reports] == [4, 6, 8]

    def test_zero_yield_design_raises(self):
        from repro.analysis.sweeps import spec_with

        dead = spec_with(contact_gap_factor=50.0)
        with pytest.raises(ValueError):
            effective_bit_area(dead, make_code("HC", 2, 4))


class TestPaperAreaOrderings:
    """The qualitative Fig. 8 relations that must hold."""

    def test_tc_area_shrinks_with_length(self, spec):
        areas = [
            r.effective_bit_area_nm2
            for r in family_area_sweep(spec, "TC", (6, 8, 10))
        ]
        assert areas[0] > areas[1] > areas[2]

    def test_bgc_denser_than_gc_denser_than_tc(self, spec):
        at = {
            fam: effective_bit_area(
                spec, make_code(fam, 2, 8)
            ).effective_bit_area_nm2
            for fam in ("TC", "GC", "BGC")
        }
        assert at["BGC"] <= at["GC"] < at["TC"]

    def test_minimum_near_paper_value(self, spec):
        """Paper: smallest bit area ~169 nm^2 (BGC), AHC close at ~175."""
        bgc = effective_bit_area(spec, make_code("BGC", 2, 10))
        assert bgc.effective_bit_area_nm2 == pytest.approx(169, rel=0.15)

    def test_ahc_saves_area_vs_hc(self, spec):
        hc = effective_bit_area(spec, make_code("HC", 2, 6))
        ahc = effective_bit_area(spec, make_code("AHC", 2, 6))
        assert ahc.effective_bit_area_nm2 < hc.effective_bit_area_nm2
