"""Unit tests for repro.decoder.addressing."""

import numpy as np
import pytest

from repro.codes import make_code
from repro.codes.registry import ALL_FAMILIES, TREE_FAMILIES
from repro.decoder.addressing import (
    addresses_unique_wire,
    conducting_wires,
    expected_addressable,
    sampled_addressable_mask,
    wire_addressability,
)
from repro.decoder.pattern import pattern_matrix


class TestConductingWires:
    def test_dominated_patterns_conduct(self):
        patterns = np.array([[0, 0], [0, 1], [1, 1]])
        hits = conducting_wires(patterns, np.array([0, 1]))
        assert hits.tolist() == [0, 1]

    def test_full_address_turns_on_everything(self):
        patterns = np.array([[0, 0], [0, 1], [1, 1]])
        hits = conducting_wires(patterns, np.array([1, 1]))
        assert hits.tolist() == [0, 1, 2]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            conducting_wires(np.zeros((2, 3), dtype=int), np.zeros(2, dtype=int))


class TestAddressesUniqueWire:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_every_family_uniquely_addresses(self, family):
        length = 8 if family in TREE_FAMILIES else 6
        space = make_code(family, 2, length)
        patterns = pattern_matrix(space, space.size)
        assert addresses_unique_wire(patterns)

    def test_unreflected_tree_code_fails(self):
        from repro.codes.tree import counting_words

        patterns = np.array(counting_words(2, 3))
        assert not addresses_unique_wire(patterns)

    def test_cycled_patterns_select_their_copies(self):
        """With two contact groups the same word selects both copies."""
        space = make_code("GC", 2, 6)
        patterns = pattern_matrix(space, 2 * space.size)
        assert addresses_unique_wire(patterns)


class TestWireAddressability:
    def test_probabilities_bounded(self, binary_scheme):
        nu = np.arange(1, 13).reshape(3, 4).astype(float)
        p = wire_addressability(nu, binary_scheme)
        assert np.all(p > 0) and np.all(p <= 1)

    def test_monotone_in_variability(self, binary_scheme):
        lo = wire_addressability(np.ones((1, 4)), binary_scheme)
        hi = wire_addressability(np.full((1, 4), 16.0), binary_scheme)
        assert hi[0] < lo[0]

    def test_more_regions_lower_probability(self, binary_scheme):
        few = wire_addressability(np.full((1, 4), 4.0), binary_scheme)
        many = wire_addressability(np.full((1, 8), 4.0), binary_scheme)
        assert many[0] < few[0]

    def test_expected_addressable_sums(self, binary_scheme):
        nu = np.ones((5, 4))
        p = wire_addressability(nu, binary_scheme)
        assert expected_addressable(nu, binary_scheme) == pytest.approx(p.sum())


class TestSampledAddressableMask:
    def test_exact_nominal_vt_all_addressable(self, binary_scheme):
        patterns = np.array([[0, 1], [1, 0]])
        levels = np.asarray(binary_scheme.levels)
        vt = levels[patterns]
        mask = sampled_addressable_mask(vt, patterns, binary_scheme)
        assert mask.all()

    def test_large_drift_fails(self, binary_scheme):
        patterns = np.array([[0, 1]])
        vt = np.array([[0.25, 0.25]])  # region 1 should be 0.75
        mask = sampled_addressable_mask(vt, patterns, binary_scheme)
        assert not mask[0]

    def test_shape_mismatch(self, binary_scheme):
        with pytest.raises(ValueError):
            sampled_addressable_mask(
                np.zeros((2, 3)), np.zeros((2, 2), dtype=int), binary_scheme
            )

    def test_agrees_with_analytic_in_expectation(self, binary_scheme, rng):
        """MC fraction ~= product of window integrals for iid regions."""
        from repro.device.variability import (
            region_pass_probability,
            sample_region_vt,
        )

        nu = np.full((2000, 4), 4.0)
        patterns = np.zeros((2000, 4), dtype=int)
        nominal = np.full((2000, 4), binary_scheme.levels[0])
        vt = sample_region_vt(nominal, nu, rng)
        mask = sampled_addressable_mask(vt, patterns, binary_scheme)
        analytic = region_pass_probability(
            nu[:1], binary_scheme.window_halfwidth
        ).prod()
        assert mask.mean() == pytest.approx(analytic, abs=0.03)
