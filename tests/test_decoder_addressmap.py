"""Unit tests for repro.decoder.addressmap."""

import pytest

from repro.codes import make_code
from repro.decoder.addressmap import AddressError, AddressMap, WireAddress


@pytest.fixture
def amap(spec):
    return AddressMap(spec, make_code("BGC", 2, 8))


class TestWireAddress:
    def test_validation(self):
        with pytest.raises(AddressError):
            WireAddress(cave=-1, side="left", group=0, word=(0,))
        with pytest.raises(AddressError):
            WireAddress(cave=0, side="top", group=0, word=(0,))


class TestForwardTranslation:
    def test_counts(self, amap, spec):
        assert amap.wires_per_cave == 2 * spec.nanowires_per_half_cave
        assert amap.wire_count == spec.caves_per_layer * amap.wires_per_cave

    def test_first_wire_is_cave0_left_group0(self, amap):
        addr = amap.address_of(0)
        assert addr.cave == 0
        assert addr.side == "left"
        assert addr.group == 0

    def test_mirror_twins_share_word_not_side(self, amap):
        left = amap.address_of(0)
        right = amap.address_of(amap.wires_per_cave - 1)
        assert left.word == right.word
        assert left.side == "left" and right.side == "right"
        assert left.group == right.group

    def test_cave_boundary(self, amap):
        last_of_cave0 = amap.address_of(amap.wires_per_cave - 1)
        first_of_cave1 = amap.address_of(amap.wires_per_cave)
        assert last_of_cave0.cave == 0
        assert first_of_cave1.cave == 1
        assert first_of_cave1.side == "left"

    def test_group_progression(self, amap, spec):
        """With Omega = 16 and N = 20 the half cave has two groups."""
        groups = {amap.address_of(w).group for w in range(spec.nanowires_per_half_cave)}
        assert groups == {0, 1}

    def test_out_of_range(self, amap):
        with pytest.raises(AddressError):
            amap.address_of(-1)
        with pytest.raises(AddressError):
            amap.address_of(amap.wire_count)


class TestReverseTranslation:
    def test_bijective_over_layer(self, amap):
        assert amap.is_bijective()

    def test_bijective_for_hot_codes(self, spec):
        assert AddressMap(spec, make_code("HC", 2, 6)).is_bijective()

    def test_bijective_for_short_codes(self, spec):
        """Omega = 8 < N = 20: three groups per half cave, words repeat
        across groups — (group, word) still disambiguates."""
        assert AddressMap(spec, make_code("TC", 2, 6)).is_bijective()

    def test_unknown_word_raises(self, amap):
        bad = WireAddress(cave=0, side="left", group=0, word=(9,) * 8)
        with pytest.raises(AddressError):
            amap.wire_of(bad)

    def test_out_of_range_fields_raise(self, amap):
        word = amap.address_of(0).word
        with pytest.raises(AddressError):
            amap.wire_of(WireAddress(cave=999, side="left", group=0, word=word))
        with pytest.raises(AddressError):
            amap.wire_of(WireAddress(cave=0, side="left", group=99, word=word))
