"""Unit tests for repro.decoder.cave — the full mirrored-cave model."""

import numpy as np
import pytest

from repro.codes import make_code
from repro.decoder.cave import FullCaveDecoder


@pytest.fixture
def cave(spec):
    return FullCaveDecoder(spec=spec, space=make_code("BGC", 2, 8))


class TestMirroredPatterns:
    def test_total_wires(self, cave, spec):
        assert cave.nanowires == 2 * spec.nanowires_per_half_cave

    def test_mirror_symmetry(self, cave):
        assert cave.twins_share_patterns()

    def test_geometric_order(self, cave):
        p = cave.mirrored_patterns()
        half = cave.half.patterns
        assert np.array_equal(p[: half.shape[0]], half)
        assert np.array_equal(p[half.shape[0]:], half[::-1])

    def test_twins_identical_rows(self, cave):
        p = cave.mirrored_patterns()
        n = p.shape[0]
        for i in (0, 3, n // 2 - 1):
            assert np.array_equal(p[i], p[n - 1 - i])


class TestUniqueAddressing:
    @pytest.mark.parametrize("family,length", [("TC", 6), ("BGC", 8), ("HC", 6)])
    def test_sec33_claim_holds(self, spec, family, length):
        """Half-cave uniqueness + per-half contact groups => cave-wide
        unique addressing (the paper's Sec. 3.3 argument)."""
        cave = FullCaveDecoder(spec=spec, space=make_code(family, 2, length))
        assert cave.uniquely_addressable_with_groups()

    def test_yield_equals_half_cave(self, cave):
        assert cave.cave_yield == pytest.approx(cave.half.cave_yield)
        assert cave.layer_yield() == pytest.approx(cave.cave_yield)

    def test_summary_fields(self, cave):
        s = cave.summary()
        assert s["halves"] == 2
        assert s["mirror_symmetric"]
        assert s["uniquely_addressable"]
        assert 0 < s["cave_yield"] <= 1
