"""Unit tests for repro.decoder.contact_groups."""

import pytest

from repro.decoder.contact_groups import (
    GroupError,
    geometric_survival_fraction,
    plan_contact_groups,
)
from repro.fabrication.lithography import LithographyRules


class TestPlanContactGroups:
    def test_single_group_when_space_covers(self):
        plan = plan_contact_groups(20, 32)
        assert plan.group_count == 1
        assert plan.group_sizes == (20,)
        assert plan.internal_boundaries == 0

    def test_two_balanced_groups(self):
        plan = plan_contact_groups(20, 16)
        assert plan.group_count == 2
        assert plan.group_sizes == (10, 10)

    def test_uneven_split_balanced(self):
        plan = plan_contact_groups(20, 8)
        assert plan.group_count == 3
        assert sorted(plan.group_sizes) == [6, 7, 7]
        assert sum(plan.group_sizes) == 20

    def test_group_sizes_respect_capacity(self):
        plan = plan_contact_groups(100, 6)
        assert all(s <= 6 for s in plan.group_sizes)
        assert sum(plan.group_sizes) == 100

    def test_rejects_bad_inputs(self):
        with pytest.raises(GroupError):
            plan_contact_groups(0, 8)
        with pytest.raises(GroupError):
            plan_contact_groups(8, 0)


class TestBoundaryLosses:
    def test_no_loss_single_group(self):
        plan = plan_contact_groups(20, 32)
        assert plan.expected_boundary_loss == 0.0
        assert plan.survival_fraction == 1.0

    def test_loss_scales_with_boundaries(self):
        one = plan_contact_groups(20, 16)
        two = plan_contact_groups(20, 8)
        assert two.expected_boundary_loss > one.expected_boundary_loss

    def test_survival_clamped_non_negative(self):
        rules = LithographyRules(contact_gap_factor=10.0)
        plan = plan_contact_groups(10, 2, rules)
        assert plan.expected_surviving == 0.0
        assert plan.survival_fraction == 0.0

    def test_survival_fraction_formula(self):
        rules = LithographyRules(contact_gap_factor=1.0, alignment_tolerance_nm=5.0)
        plan = plan_contact_groups(20, 16, rules)
        expected = (20 - 4.2) / 20
        assert plan.survival_fraction == pytest.approx(expected)

    def test_convenience_wrapper(self):
        rules = LithographyRules()
        assert geometric_survival_fraction(20, 16, rules) == pytest.approx(
            plan_contact_groups(20, 16, rules).survival_fraction
        )


class TestContactWidths:
    def test_minimum_width_enforced(self):
        plan = plan_contact_groups(8, 2)  # groups of 2 wires = 20 nm < 48 nm
        assert all(w == pytest.approx(48.0) for w in plan.contact_widths_nm())

    def test_wide_groups_scale(self):
        plan = plan_contact_groups(20, 32)
        assert plan.contact_widths_nm()[0] == pytest.approx(200.0)

    def test_contact_region_length(self):
        plan = plan_contact_groups(20, 8)
        assert plan.contact_region_length_nm() == pytest.approx(3 * 48.0)
