"""Unit tests for repro.decoder.decoder (HalfCaveDecoder facade)."""

import numpy as np
import pytest

from repro.codes import make_code
from repro.decoder.decoder import HalfCaveDecoder
from repro.device.threshold import LevelScheme


@pytest.fixture
def decoder():
    return HalfCaveDecoder(make_code("BGC", 2, 8), nanowires=20)


class TestConstruction:
    def test_default_scheme_matches_code_valence(self, decoder):
        assert decoder.scheme.n == 2

    def test_rejects_scheme_valence_mismatch(self):
        with pytest.raises(ValueError):
            HalfCaveDecoder(make_code("GC", 3, 6), nanowires=10, scheme=LevelScheme(2))

    def test_rejects_zero_nanowires(self):
        with pytest.raises(ValueError):
            HalfCaveDecoder(make_code("GC", 2, 6), nanowires=0)


class TestDerivedMatrices:
    def test_pattern_shape(self, decoder):
        assert decoder.patterns.shape == (20, 8)

    def test_plan_consistent(self, decoder):
        assert decoder.plan.verify()
        assert np.array_equal(decoder.plan.pattern, decoder.patterns)

    def test_nu_and_sigma_shapes(self, decoder):
        assert decoder.nu.shape == (20, 8)
        assert decoder.sigma.shape == (20, 8)

    def test_sigma_scaling(self, decoder):
        assert np.allclose(decoder.sigma, decoder.sigma_t**2 * decoder.nu)

    def test_sigma_norm_and_average(self, decoder):
        assert decoder.sigma_norm == pytest.approx(decoder.sigma.sum())
        assert decoder.average_variability == pytest.approx(decoder.sigma.mean())


class TestYieldComponents:
    def test_wire_probabilities_bounds(self, decoder):
        p = decoder.wire_probabilities
        assert p.shape == (20,)
        assert np.all(p > 0) and np.all(p <= 1)

    def test_cave_yield_is_product(self, decoder):
        assert decoder.cave_yield == pytest.approx(
            decoder.electrical_yield * decoder.geometric_yield
        )

    def test_later_wires_more_reliable(self, decoder):
        """nu decreases with wire index, so addressability increases."""
        p = decoder.wire_probabilities
        assert p[-1] > p[0]

    def test_fabrication_complexity_binary(self, decoder):
        """All binary codes: Phi = 2N (Fig. 5)."""
        assert decoder.fabrication_complexity == 40


class TestSummary:
    def test_summary_round_trips_fields(self, decoder):
        s = decoder.summary()
        assert s["nanowires"] == 20
        assert s["regions"] == 8
        assert s["code_space"] == 16
        assert s["groups"] == decoder.group_plan.group_count
        assert s["cave_yield"] == pytest.approx(decoder.cave_yield)

    def test_tighter_window_lowers_yield(self):
        loose = HalfCaveDecoder(
            make_code("BGC", 2, 8), 20, scheme=LevelScheme(2, window_margin=1.0)
        )
        tight = HalfCaveDecoder(
            make_code("BGC", 2, 8), 20, scheme=LevelScheme(2, window_margin=0.5)
        )
        assert tight.cave_yield < loose.cave_yield

    def test_larger_sigma_lowers_yield(self):
        low = HalfCaveDecoder(make_code("BGC", 2, 8), 20, sigma_t=0.03)
        high = HalfCaveDecoder(make_code("BGC", 2, 8), 20, sigma_t=0.08)
        assert high.cave_yield < low.cave_yield
