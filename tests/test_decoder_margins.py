"""Unit tests for repro.decoder.margins — sense-margin analysis."""

import numpy as np
import pytest

from repro.codes import make_code
from repro.decoder.margins import (
    applied_voltages,
    block_margins,
    margin_report,
    margin_yield,
    select_margins,
)
from repro.device.threshold import LevelScheme


@pytest.fixture
def scheme():
    return LevelScheme(2)


class TestAppliedVoltages:
    def test_half_spacing_above_level(self, scheme):
        va = applied_voltages(np.array([0, 1]), scheme)
        assert va == pytest.approx([0.25 + 0.25, 0.75 + 0.25])

    def test_selects_addressed_level_not_next(self):
        scheme3 = LevelScheme(3)
        va = applied_voltages(np.array([1]), scheme3)
        levels = scheme3.levels
        assert levels[1] < va[0] < levels[2]


class TestSelectMargins:
    def test_zero_variability_gives_half_spacing(self, scheme):
        patterns = np.array([[0, 1], [1, 0]])
        margins = select_margins(patterns, np.zeros((2, 2)), scheme)
        assert margins == pytest.approx([0.25, 0.25])

    def test_margins_shrink_with_variability(self, scheme):
        patterns = np.array([[0, 1]])
        low = select_margins(patterns, np.ones((1, 2)), scheme, k_sigma=3.0)
        high = select_margins(patterns, 9 * np.ones((1, 2)), scheme, k_sigma=3.0)
        assert high[0] < low[0]

    def test_k_sigma_scaling(self, scheme):
        patterns = np.array([[0, 1]])
        nu = 4 * np.ones((1, 2))
        m1 = select_margins(patterns, nu, scheme, sigma_t=0.05, k_sigma=1.0)
        m3 = select_margins(patterns, nu, scheme, sigma_t=0.05, k_sigma=3.0)
        assert m1[0] - m3[0] == pytest.approx(2 * 0.05 * 2.0)


class TestBlockMargins:
    def test_distinct_patterns_have_finite_margin(self, scheme):
        patterns = np.array([[0, 1], [1, 0]])
        margins = block_margins(patterns, np.zeros((2, 2)), scheme)
        assert np.isfinite(margins).all()

    def test_identical_copies_skipped(self, scheme):
        """Copies in other contact groups do not count as conflicts."""
        patterns = np.array([[0, 1], [0, 1]])
        margins = block_margins(patterns, np.zeros((2, 2)), scheme)
        assert np.isinf(margins).all()

    def test_zero_variability_margin_value(self, scheme):
        """With VA = level + spacing/2, the blocking region sits
        spacing/2 above the applied voltage."""
        patterns = np.array([[0, 1], [1, 0]])
        margins = block_margins(patterns, np.zeros((2, 2)), scheme)
        assert margins == pytest.approx([0.25, 0.25])


class TestMarginReport:
    def test_report_fields(self):
        report = margin_report(make_code("BGC", 2, 8), 20)
        assert report.k_sigma == 3.0
        assert report.worst_margin_v == min(
            report.select_margin_v, report.block_margin_v
        )

    def test_bgc_has_larger_margin_than_tc(self):
        """Lower variability -> larger k-sigma margins (the Fig. 7
        mechanism seen through the margin lens)."""
        tc = margin_report(make_code("TC", 2, 8), 20)
        bgc = margin_report(make_code("BGC", 2, 8), 20)
        assert bgc.worst_margin_v > tc.worst_margin_v

    def test_margin_degrades_with_k(self):
        code = make_code("GC", 2, 8)
        k1 = margin_report(code, 20, k_sigma=1.0)
        k4 = margin_report(code, 20, k_sigma=4.0)
        assert k4.worst_margin_v < k1.worst_margin_v


class TestMarginYield:
    def test_bounds(self):
        y = margin_yield(make_code("BGC", 2, 8), 20)
        assert 0.0 <= y <= 1.0

    def test_more_conservative_at_high_k(self):
        code = make_code("TC", 2, 10)
        loose = margin_yield(code, 20, k_sigma=1.0)
        tight = margin_yield(code, 20, k_sigma=4.0)
        assert tight <= loose

    def test_optimised_code_not_worse(self):
        tc = margin_yield(make_code("TC", 2, 8), 20, k_sigma=2.0)
        bgc = margin_yield(make_code("BGC", 2, 8), 20, k_sigma=2.0)
        assert bgc >= tc
