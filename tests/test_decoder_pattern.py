"""Unit tests for repro.decoder.pattern."""

import numpy as np
import pytest

from repro.codes import GrayCode, HotCode, make_code
from repro.decoder.pattern import (
    address_of_nanowire,
    group_local_indices,
    pattern_matrix,
    pattern_uniqueness_within_groups,
)


class TestPatternMatrix:
    def test_shape_reflected(self):
        p = pattern_matrix(GrayCode(2, 4), 20)
        assert p.shape == (20, 8)

    def test_shape_unreflected(self):
        p = pattern_matrix(HotCode(2, 3), 20)
        assert p.shape == (20, 6)

    def test_rows_cycle_through_space(self):
        space = GrayCode(2, 2)  # 4 words
        p = pattern_matrix(space, 10)
        assert np.array_equal(p[0], p[4])
        assert np.array_equal(p[1], p[9])

    def test_digits_in_range(self):
        p = pattern_matrix(make_code("GC", 3, 6), 15)
        assert p.min() >= 0 and p.max() <= 2


class TestAddressOfNanowire:
    def test_matches_pattern_matrix(self):
        space = GrayCode(2, 3)
        p = pattern_matrix(space, 20)
        for i in (0, 7, 8, 19):
            assert tuple(p[i]) == address_of_nanowire(space, i)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            address_of_nanowire(GrayCode(2, 2), -1)


class TestGroupLocalIndices:
    def test_modular(self):
        idx = group_local_indices(7, 3)
        assert idx.tolist() == [0, 1, 2, 0, 1, 2, 0]

    def test_rejects_bad_group(self):
        with pytest.raises(ValueError):
            group_local_indices(5, 0)


class TestUniquenessWithinGroups:
    def test_full_space_groups_are_unique(self):
        space = GrayCode(2, 3)
        p = pattern_matrix(space, 24)  # three full groups of 8
        assert pattern_uniqueness_within_groups(p, space.size)

    def test_oversized_groups_collide(self):
        space = GrayCode(2, 2)  # 4 words
        p = pattern_matrix(space, 8)
        assert not pattern_uniqueness_within_groups(p, 8)

    def test_partial_last_group_ok(self):
        space = GrayCode(2, 3)
        p = pattern_matrix(space, 20)  # groups 8 + 8 + 4
        assert pattern_uniqueness_within_groups(p, space.size)
