"""Unit tests for repro.decoder.stochastic — the [6]/[8] baselines."""

import numpy as np
import pytest

from repro.decoder.stochastic import (
    StochasticError,
    compare_with_deterministic,
    expected_addressable_fraction,
    random_contact_addressable_fraction,
    required_code_space,
    signature_collision_probability,
    simulate_random_codes,
    simulate_random_contacts,
    unique_code_probability,
)


class TestRandomCodes:
    def test_single_wire_always_unique(self):
        assert unique_code_probability(1, 10) == 1.0

    def test_formula(self):
        assert unique_code_probability(3, 4) == pytest.approx((3 / 4) ** 2)

    def test_monotone_in_code_space(self):
        fracs = [expected_addressable_fraction(20, o) for o in (20, 50, 200, 1000)]
        assert all(b > a for a, b in zip(fracs, fracs[1:]))

    def test_monotone_in_group_size(self):
        fracs = [expected_addressable_fraction(g, 64) for g in (2, 10, 30)]
        assert all(b < a for a, b in zip(fracs, fracs[1:]))

    def test_rejects_bad_inputs(self):
        with pytest.raises(StochasticError):
            unique_code_probability(0, 10)
        with pytest.raises(StochasticError):
            unique_code_probability(10, 0)

    def test_monte_carlo_agrees(self, rng):
        analytic = expected_addressable_fraction(20, 64)
        mc = simulate_random_codes(20, 64, samples=2000, rng=rng)
        assert mc == pytest.approx(analytic, abs=0.02)

    def test_required_code_space_overprovisions(self):
        """Stochastic addressing needs Omega >> G (paper's novelty claim)."""
        omega = required_code_space(20, 0.95)
        assert omega > 15 * 20  # ~372 for 95%
        assert expected_addressable_fraction(20, omega) >= 0.95

    def test_required_code_space_rejects_bad_target(self):
        with pytest.raises(StochasticError):
            required_code_space(20, 1.0)


class TestRandomContacts:
    def test_collision_probability_formula(self):
        assert signature_collision_probability(1, 0.5) == pytest.approx(0.5)
        assert signature_collision_probability(4, 0.5) == pytest.approx(0.5**4)

    def test_biased_connections_collide_more(self):
        fair = signature_collision_probability(8, 0.5)
        biased = signature_collision_probability(8, 0.9)
        assert biased > fair

    def test_fraction_monotone_in_mesowires(self):
        fracs = [random_contact_addressable_fraction(20, m) for m in (2, 6, 10, 16)]
        assert all(b > a for a, b in zip(fracs, fracs[1:]))

    def test_monte_carlo_agrees(self, rng):
        analytic = random_contact_addressable_fraction(10, 8)
        mc = simulate_random_contacts(10, 8, samples=2000, rng=rng)
        assert mc == pytest.approx(analytic, abs=0.02)

    def test_rejects_bad_inputs(self):
        with pytest.raises(StochasticError):
            signature_collision_probability(0, 0.5)
        with pytest.raises(StochasticError):
            signature_collision_probability(4, 1.5)
        with pytest.raises(StochasticError):
            random_contact_addressable_fraction(0, 4)
        with pytest.raises(StochasticError):
            simulate_random_codes(5, 5, 0, np.random.default_rng(0))
        with pytest.raises(StochasticError):
            simulate_random_contacts(5, 5, 0, np.random.default_rng(0))


class TestComparison:
    def test_deterministic_wins_at_equal_size(self):
        """The paper's argument, quantified."""
        cmp = compare_with_deterministic(group_size=20, code_space=20, mesowires=10)
        assert cmp.deterministic_fraction == 1.0
        assert cmp.random_code_fraction < 0.5
        assert cmp.random_contact_fraction < 1.0

    def test_deterministic_limited_by_code_space(self):
        cmp = compare_with_deterministic(group_size=20, code_space=10, mesowires=10)
        assert cmp.deterministic_fraction == pytest.approx(0.5)

    def test_stochastic_catches_up_with_overprovisioning(self):
        small = compare_with_deterministic(20, 20, 10)
        big = compare_with_deterministic(20, 2000, 10)
        assert big.random_code_fraction > small.random_code_fraction
        assert big.random_code_fraction > 0.99
