"""Unit tests for repro.decoder.variability (Def. 5, Examples 4-5)."""

import numpy as np
import pytest

from repro.codes import BalancedGrayCode, GrayCode, TreeCode, make_code
from repro.decoder.variability import (
    average_variability,
    code_variability,
    dose_count_matrix,
    nonzero_dose_mask,
    normalised_std_map,
    plan_variability,
    sigma_norm1,
    variability_matrix,
)
from repro.fabrication.doping import DopingPlan

EXAMPLE4_S = np.array([[0.0, -5, 0, 2], [-2, 7, 5, -7], [4, 2, 4, 9]])
EXAMPLE5_S = np.array([[0.0, -5, 0, 2], [-2, 0, 5, 0], [4, 9, 4, 2]])


class TestDoseCountMatrix:
    def test_paper_example4(self):
        nu = dose_count_matrix(EXAMPLE4_S)
        assert nu.tolist() == [[2, 3, 2, 3], [2, 2, 2, 2], [1, 1, 1, 1]]

    def test_paper_example5(self):
        nu = dose_count_matrix(EXAMPLE5_S)
        assert nu.tolist() == [[2, 2, 2, 2], [2, 1, 2, 1], [1, 1, 1, 1]]

    def test_last_row_is_all_ones_for_codes(self):
        """Prop. 4 proof: nu[N-1, j] = 1 — the last wire gets one dose."""
        for space in (TreeCode(2, 3), GrayCode(3, 2), make_code("HC", 2, 6)):
            plan = DopingPlan.from_code(space, 10)
            nu = dose_count_matrix(plan.steps)
            assert (nu[-1] == 1).all()

    def test_nu_non_increasing_in_wire_index(self):
        """Prop. 4 proof: nu only grows toward earlier-defined wires."""
        plan = DopingPlan.from_code(TreeCode(2, 4), 16)
        nu = dose_count_matrix(plan.steps)
        assert (np.diff(nu, axis=0) <= 0).all()

    def test_mask_empty_matrix(self):
        assert nonzero_dose_mask(np.zeros((2, 2))).sum() == 0


class TestVariabilityMatrix:
    def test_scales_by_sigma_squared(self):
        nu = dose_count_matrix(EXAMPLE4_S)
        sigma = variability_matrix(nu, sigma_t=0.05)
        assert np.allclose(sigma, 0.0025 * nu)

    def test_example4_norm(self):
        sigma = variability_matrix(dose_count_matrix(EXAMPLE4_S), 1.0)
        assert sigma_norm1(sigma) == 22.0

    def test_example5_norm_smaller(self):
        """Example 5: the Gray sequence cuts ||Sigma||_1 from 22 to 18."""
        sigma = variability_matrix(dose_count_matrix(EXAMPLE5_S), 1.0)
        assert sigma_norm1(sigma) == 18.0

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            variability_matrix(np.ones((2, 2)), 0.0)


class TestAverageVariability:
    def test_average(self):
        sigma = np.full((2, 2), 4.0)
        assert average_variability(sigma) == 4.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            average_variability(np.zeros((0, 0)))


class TestCodeVariability:
    def test_gray_beats_tree(self):
        """Prop. 4 at platform scale."""
        tc = sigma_norm1(code_variability(TreeCode(2, 4), 20))
        gc = sigma_norm1(code_variability(GrayCode(2, 4), 20))
        assert gc < tc

    def test_balanced_spreads_evenly(self):
        """Fig. 6.e/f: BGC flattens the variability map."""
        tc_map = normalised_std_map(TreeCode(2, 4), 20)
        bgc_map = normalised_std_map(BalancedGrayCode(2, 4), 20)
        assert bgc_map.max() < tc_map.max()

    def test_std_map_is_sqrt_of_nu(self):
        space = GrayCode(2, 3)
        plan = DopingPlan.from_code(space, 12)
        nu = dose_count_matrix(plan.steps)
        assert np.allclose(normalised_std_map(space, 12), np.sqrt(nu))

    def test_longer_codes_lower_average_variability(self):
        """Sec. 6.2: longer codes have fewer transitions per digit."""
        short = average_variability(code_variability(make_code("TC", 2, 6), 20))
        long = average_variability(code_variability(make_code("TC", 2, 10), 20))
        assert long < short


class TestPlanVariability:
    def test_matches_manual_composition(self):
        plan = DopingPlan.from_code(GrayCode(2, 3), 10)
        manual = variability_matrix(dose_count_matrix(plan.steps), 0.05)
        assert np.allclose(plan_variability(plan, 0.05), manual)
