"""Deep-coverage tests for corners the module-level suites leave thin."""

import numpy as np
import pytest

from repro.codes import (
    ArrangedHotCode,
    BalancedGrayCode,
    GrayCode,
    HotCode,
    TreeCode,
    make_code,
)


class TestCodeEdgeSizes:
    def test_smallest_tree_code(self):
        tc = TreeCode(2, 1)
        assert tc.size == 2
        assert tc.pattern_words() == [(0, 1), (1, 0)]

    def test_smallest_hot_code(self):
        hc = HotCode(2, 1)
        assert hc.size == 2
        assert hc.is_uniquely_addressable()

    def test_largest_plotted_hot_code(self):
        """M = 10 (k = 5): 252 words, still distance-2 arrangeable."""
        ahc = ArrangedHotCode(2, 5)
        assert ahc.size == 252
        from repro.codes.metrics import is_distance_sequence

        assert is_distance_sequence(list(ahc.words), 2)

    def test_ternary_hot_code_arrangeable(self):
        ahc = ArrangedHotCode(3, 2)
        assert ahc.size == 90

    def test_bgc_equals_gc_word_set_at_every_plotted_size(self):
        for m in (3, 4, 5):
            assert set(BalancedGrayCode(2, m).words) == set(GrayCode(2, m).words)


class TestDesignFacadeCorners:
    def test_floorplan_decoder_overhead(self, spec):
        from repro.core.design import DecoderDesign

        short = DecoderDesign.build("TC", 6, spec=spec)
        long = DecoderDesign.build("TC", 10, spec=spec)
        # longer code: more mesowires but fewer contact rows
        assert long.floorplan.mesowire_span_nm > short.floorplan.mesowire_span_nm
        assert long.floorplan.contact_span_nm < short.floorplan.contact_span_nm

    def test_design_equality_of_paths(self, spec):
        """DecoderDesign, HalfCaveDecoder and crossbar_yield agree."""
        from repro.core.design import DecoderDesign
        from repro.crossbar.yield_model import crossbar_yield

        design = DecoderDesign.build("AHC", 8, spec=spec)
        assert design.cave_yield == pytest.approx(
            crossbar_yield(spec, design.space).cave_yield
        )
        assert design.summary()["phi"] == design.decoder.fabrication_complexity

    def test_ternary_design_point(self, spec):
        from repro.core.design import DecoderDesign

        design = DecoderDesign.build("GC", 6, n=3, spec=spec)
        assert design.space.n == 3
        assert 0 < design.cave_yield <= 1
        assert design.bit_area_nm2 > 0


class TestFigureGeneratorsCorners:
    def test_fig5_custom_families(self):
        from repro.analysis.figures import fig5_fabrication_complexity

        data = fig5_fabrication_complexity(families=("TC", "GC", "BGC"))
        assert set(data["Binary"]) == {"TC", "GC", "BGC"}
        assert data["Binary"]["BGC"] == 20

    def test_fig6_custom_lengths(self):
        from repro.analysis.figures import fig6_variability_maps

        data = fig6_variability_maps(lengths=(6,), families=("TC",))
        assert set(data) == {("TC", 6)}
        assert data[("TC", 6)].shape == (20, 6)

    def test_fig7_with_custom_spec(self):
        from repro.analysis.figures import fig7_crossbar_yield
        from repro.analysis.sweeps import spec_with

        harsh = fig7_crossbar_yield(spec_with(sigma_t=0.10))
        mild = fig7_crossbar_yield(spec_with(sigma_t=0.03))
        for family in harsh:
            for (l1, y1), (l2, y2) in zip(harsh[family], mild[family]):
                assert l1 == l2
                assert y1 < y2


class TestMarginCorners:
    def test_margin_yield_extremes(self):
        from repro.decoder.margins import margin_yield

        code = make_code("BGC", 2, 8)
        assert margin_yield(code, 20, k_sigma=0.1) == 1.0
        assert margin_yield(code, 20, k_sigma=50.0) == 0.0

    def test_ternary_margins(self):
        from repro.decoder.margins import margin_report

        report = margin_report(make_code("GC", 3, 6), 10, k_sigma=1.0)
        assert np.isfinite(report.select_margin_v)
        assert np.isfinite(report.block_margin_v)


class TestFullCaveAcrossFamilies:
    @pytest.mark.parametrize("family,length", [("GC", 8), ("AHC", 6)])
    def test_cave_summaries(self, spec, family, length):
        from repro.decoder.cave import FullCaveDecoder

        cave = FullCaveDecoder(spec=spec, space=make_code(family, 2, length))
        s = cave.summary()
        assert s["mirror_symmetric"] and s["uniquely_addressable"]


class TestEccLargerCode:
    def test_secded_64_57_single_error_correction(self, rng):
        from repro.crossbar.ecc import SecdedCode

        code = SecdedCode(parity_bits=6)
        data = rng.integers(0, 2, code.data_bits).astype(bool)
        block = code.encode(data)
        for pos in rng.choice(code.block_bits, size=10, replace=False):
            corrupted = block.copy()
            corrupted[pos] = ~corrupted[pos]
            decoded, corrected = code.decode(corrupted)
            assert np.array_equal(decoded, data)
            assert corrected == pos


class TestExportRoundTrips:
    def test_fig6_panels_to_csv(self, tmp_path):
        from repro.analysis.export import matrix_to_csv
        from repro.analysis.figures import fig6_variability_maps

        data = fig6_variability_maps(lengths=(8,), families=("BGC",))
        path = matrix_to_csv(data[("BGC", 8)], tmp_path / "panel.csv")
        lines = path.read_text().splitlines()
        assert len(lines) == 21  # header + 20 wires

    def test_headline_claims_to_json(self, tmp_path, spec):
        import json

        from repro.analysis.export import to_json
        from repro.analysis.stats import headline_summary

        claims = headline_summary(spec)
        path = to_json(
            [
                {"key": c.key, "paper": c.paper, "measured": c.measured_value}
                for c in claims
            ],
            tmp_path / "claims.json",
        )
        loaded = json.loads(path.read_text())
        assert len(loaded) == 10


class TestStochasticExample:
    def test_example_runs(self, capsys, monkeypatch):
        import runpy
        import sys
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "examples"
            / "stochastic_baselines.py"
        )
        monkeypatch.setattr(sys, "argv", [str(path)])
        runpy.run_path(str(path), run_name="__main__")
        out = capsys.readouterr().out
        assert "over-provisioning" in out
