"""Unit tests for repro.device.physics and materials."""

import numpy as np
import pytest

from repro.device.materials import (
    EPS_OXIDE,
    EPS_SILICON,
    PAPER_FIT_GATE_STACK,
    THERMAL_VOLTAGE_300K,
    GateStack,
)
from repro.device.physics import (
    DOPING_MAX,
    DOPING_MIN,
    DigitDopingMap,
    PhysicsError,
    ThresholdModel,
    fit_gate_stack_to_paper_example,
)


class TestConstants:
    def test_thermal_voltage_near_26mV(self):
        assert 0.0255 < THERMAL_VOLTAGE_300K < 0.0262

    def test_permittivities_ordered(self):
        assert EPS_SILICON > EPS_OXIDE > 0

    def test_gate_stack_capacitance(self):
        stack = GateStack(oxide_thickness_cm=1e-7, flatband_voltage=0.0)
        assert stack.oxide_capacitance == pytest.approx(EPS_OXIDE / 1e-7)


class TestThresholdModel:
    def test_vt_monotonic_in_doping(self):
        model = ThresholdModel()
        dopings = np.logspace(15, 20, 40)
        vts = [model.vt_from_doping(na) for na in dopings]
        assert all(b > a for a, b in zip(vts, vts[1:]))

    def test_vt_nonlinear(self):
        """f must be non-linear (Prop. 1 calls it 'monotonic non-linear')."""
        model = ThresholdModel()
        nas = [1e17, 2e17, 3e17]
        vts = [model.vt_from_doping(na) for na in nas]
        slope1 = (vts[1] - vts[0]) / 1e17
        slope2 = (vts[2] - vts[1]) / 1e17
        assert abs(slope1 - slope2) / abs(slope1) > 0.01

    def test_inverse_roundtrip(self):
        model = ThresholdModel()
        for na in (1e16, 5e17, 2e18, 9e18, 5e19):
            assert model.doping_from_vt(model.vt_from_doping(na)) == pytest.approx(
                na, rel=1e-6
            )

    def test_rejects_out_of_range_doping(self):
        model = ThresholdModel()
        with pytest.raises(PhysicsError):
            model.vt_from_doping(DOPING_MIN / 10)
        with pytest.raises(PhysicsError):
            model.vt_from_doping(DOPING_MAX * 10)

    def test_rejects_out_of_range_vt(self):
        model = ThresholdModel()
        lo, hi = model.vt_range()
        with pytest.raises(PhysicsError):
            model.doping_from_vt(lo - 1.0)
        with pytest.raises(PhysicsError):
            model.doping_from_vt(hi + 1.0)

    def test_rejects_non_positive_doping_for_fermi(self):
        with pytest.raises(PhysicsError):
            ThresholdModel().fermi_potential(0.0)

    def test_paper_fit_matches_example_anchors(self):
        """The default stack reproduces Example 1's end points closely."""
        model = ThresholdModel(PAPER_FIT_GATE_STACK)
        assert model.vt_from_doping(2e18) == pytest.approx(0.1, abs=0.02)
        assert model.vt_from_doping(9e18) == pytest.approx(0.5, abs=0.02)

    def test_paper_fit_middle_level_close(self):
        """The middle point (0.3 V <-> 4e18) is approximate, within ~20%."""
        model = ThresholdModel(PAPER_FIT_GATE_STACK)
        assert model.vt_from_doping(4e18) == pytest.approx(0.3, rel=0.2)


class TestFitGateStack:
    def test_fit_is_exact_at_anchors(self):
        stack = fit_gate_stack_to_paper_example()
        model = ThresholdModel(stack)
        assert model.vt_from_doping(2e18) == pytest.approx(0.1, abs=1e-9)
        assert model.vt_from_doping(9e18) == pytest.approx(0.5, abs=1e-9)

    def test_fit_close_to_shipped_constants(self):
        stack = fit_gate_stack_to_paper_example()
        assert stack.oxide_thickness_cm == pytest.approx(
            PAPER_FIT_GATE_STACK.oxide_thickness_cm, rel=0.05
        )
        assert stack.flatband_voltage == pytest.approx(
            PAPER_FIT_GATE_STACK.flatband_voltage, rel=0.05
        )

    def test_fit_rejects_degenerate_anchors(self):
        with pytest.raises(PhysicsError):
            fit_gate_stack_to_paper_example(vt_low=0.5, vt_high=0.1)


class TestDigitDopingMap:
    def test_levels_strictly_increasing(self):
        dm = DigitDopingMap(vt_levels=(0.1, 0.3, 0.5))
        levels = dm.doping_levels()
        assert np.all(np.diff(levels) > 0)

    def test_apply_and_invert_roundtrip(self):
        dm = DigitDopingMap(vt_levels=(0.2, 0.5, 0.8))
        p = np.array([[0, 1, 2], [2, 0, 1]])
        assert np.array_equal(dm.invert(dm.apply(p)), p)

    def test_apply_rejects_bad_digits(self):
        dm = DigitDopingMap(vt_levels=(0.2, 0.8))
        with pytest.raises(PhysicsError):
            dm.apply(np.array([[0, 2]]))

    def test_invert_rejects_off_level_values(self):
        dm = DigitDopingMap(vt_levels=(0.2, 0.8))
        good = dm.apply(np.array([[0, 1]]))
        with pytest.raises(PhysicsError):
            dm.invert(good * 1.5)

    def test_digit_accessors(self):
        dm = DigitDopingMap(vt_levels=(0.2, 0.8))
        assert dm.vt_of_digit(1) == 0.8
        assert dm.doping_of_digit(1) > dm.doping_of_digit(0)
        with pytest.raises(PhysicsError):
            dm.vt_of_digit(2)
        with pytest.raises(PhysicsError):
            dm.doping_of_digit(-1)

    def test_requires_increasing_levels(self):
        with pytest.raises(PhysicsError):
            DigitDopingMap(vt_levels=(0.5, 0.2))

    def test_requires_two_levels(self):
        with pytest.raises(PhysicsError):
            DigitDopingMap(vt_levels=(0.5,))
