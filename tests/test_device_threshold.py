"""Unit tests for repro.device.threshold."""

import numpy as np
import pytest

from repro.device.threshold import LevelError, LevelScheme


class TestLevelScheme:
    def test_binary_default_levels(self):
        scheme = LevelScheme(2)
        assert scheme.levels == (0.25, 0.75)
        assert scheme.spacing == 0.5
        assert scheme.window_halfwidth == 0.25

    def test_levels_fit_supply_range(self):
        for n in (2, 3, 4, 8):
            scheme = LevelScheme(n)
            assert all(0.0 < v < 1.0 for v in scheme.levels)
            assert len(scheme.levels) == n

    def test_levels_equally_spaced(self):
        scheme = LevelScheme(4)
        gaps = np.diff(scheme.levels)
        assert np.allclose(gaps, gaps[0])

    def test_margin_scales_window(self):
        full = LevelScheme(2, window_margin=1.0)
        half = LevelScheme(2, window_margin=0.5)
        assert half.window_halfwidth == pytest.approx(full.window_halfwidth / 2)

    def test_windows_disjoint(self):
        scheme = LevelScheme(3, window_margin=0.9)
        w0 = scheme.window(0)
        w1 = scheme.window(1)
        assert w0[1] < w1[0]

    def test_window_rejects_bad_digit(self):
        with pytest.raises(LevelError):
            LevelScheme(2).window(2)

    def test_custom_supply_range(self):
        scheme = LevelScheme(2, vt_min=0.2, vt_max=0.8)
        assert scheme.levels == pytest.approx((0.35, 0.65))

    def test_rejects_bad_parameters(self):
        with pytest.raises(LevelError):
            LevelScheme(1)
        with pytest.raises(LevelError):
            LevelScheme(2, vt_min=1.0, vt_max=0.5)
        with pytest.raises(LevelError):
            LevelScheme(2, window_margin=0.0)
        with pytest.raises(LevelError):
            LevelScheme(2, window_margin=1.5)


class TestClassify:
    def test_nominal_values_classify_to_their_digit(self):
        scheme = LevelScheme(3)
        vt = np.array(scheme.levels)
        assert np.array_equal(scheme.classify(vt), np.arange(3))

    def test_out_of_window_is_minus_one(self):
        scheme = LevelScheme(2, window_margin=0.5)
        # halfway between the levels, outside both shrunken windows
        assert scheme.classify(np.array([0.5]))[0] == -1

    def test_small_drift_stays_classified(self):
        scheme = LevelScheme(2)
        vt = np.array([0.25 + 0.1, 0.75 - 0.1])
        assert np.array_equal(scheme.classify(vt), np.array([0, 1]))

    def test_classify_preserves_shape(self):
        scheme = LevelScheme(2)
        vt = np.full((4, 5), 0.25)
        out = scheme.classify(vt)
        assert out.shape == (4, 5)
        assert (out == 0).all()
