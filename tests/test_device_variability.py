"""Unit tests for repro.device.variability."""

import math

import numpy as np
import pytest

from repro.device.variability import (
    DEFAULT_SIGMA_T,
    compose_std,
    region_pass_probability,
    region_std,
    sample_region_vt,
    window_pass_probability,
)


class TestComposeStd:
    def test_rss_of_two(self):
        assert compose_std([3.0, 4.0]) == pytest.approx(5.0)

    def test_single_is_identity(self):
        assert compose_std([0.05]) == pytest.approx(0.05)

    def test_empty_is_zero(self):
        assert compose_std([]) == 0.0

    def test_matches_paper_rule(self):
        """sigma' = sqrt(sigma_1^2 + sigma_2^2) (Def. 5 discussion)."""
        s1, s2 = 0.05, 0.02
        assert compose_std([s1, s2]) == pytest.approx(math.sqrt(s1**2 + s2**2))


class TestRegionStd:
    def test_scales_with_sqrt_of_doses(self):
        nu = np.array([1.0, 4.0, 9.0])
        out = region_std(nu, sigma_t=0.05)
        assert np.allclose(out, [0.05, 0.10, 0.15])

    def test_zero_doses_zero_std(self):
        assert region_std(np.array([0.0]))[0] == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            region_std(np.array([-1.0]))

    def test_default_sigma(self):
        assert region_std(np.array([1.0]))[0] == pytest.approx(DEFAULT_SIGMA_T)


class TestWindowPassProbability:
    def test_bounds(self):
        p = window_pass_probability(np.array([0.01, 0.05, 1.0]), 0.25)
        assert np.all(p > 0) and np.all(p <= 1)

    def test_monotone_decreasing_in_std(self):
        stds = np.array([0.01, 0.05, 0.1, 0.5])
        p = window_pass_probability(stds, 0.25)
        assert np.all(np.diff(p) < 0)

    def test_zero_std_passes_surely(self):
        assert window_pass_probability(np.array([0.0]), 0.25)[0] == 1.0

    def test_known_value(self):
        """At halfwidth = std the probability is erf(1/sqrt(2)) ~ 0.6827."""
        p = window_pass_probability(np.array([0.25]), 0.25)
        assert p[0] == pytest.approx(0.6827, abs=1e-3)

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            window_pass_probability(np.array([0.1]), 0.0)


class TestRegionPassProbability:
    def test_monotone_decreasing_in_nu(self):
        nu = np.array([1.0, 2.0, 5.0, 20.0])
        p = region_pass_probability(nu, 0.25)
        assert np.all(np.diff(p) < 0)

    def test_matrix_shape_preserved(self):
        nu = np.ones((3, 4))
        assert region_pass_probability(nu, 0.25).shape == (3, 4)


class TestSampleRegionVt:
    def test_deterministic_with_seed(self):
        nominal = np.full((2, 3), 0.5)
        nu = np.ones((2, 3))
        a = sample_region_vt(nominal, nu, np.random.default_rng(7))
        b = sample_region_vt(nominal, nu, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_zero_nu_is_exact(self):
        nominal = np.full((2, 2), 0.3)
        nu = np.zeros((2, 2))
        out = sample_region_vt(nominal, nu, np.random.default_rng(0))
        assert np.array_equal(out, nominal)

    def test_spread_scales_with_nu(self, rng):
        nominal = np.zeros(20000)
        lo = sample_region_vt(nominal, np.full(20000, 1.0), rng)
        hi = sample_region_vt(nominal, np.full(20000, 16.0), rng)
        assert np.std(hi) == pytest.approx(4 * np.std(lo), rel=0.1)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            sample_region_vt(
                np.zeros((2, 2)), np.ones((3, 2)), np.random.default_rng(0)
            )
