"""Integration tests for repro.dist: plan, run, merge, resume, CLI.

The load-bearing claim of the shard layer is *byte identity*: for any
shard count, planning a job, running the shards (in any order, in any
mix of processes) and merging the content-keyed result files produces
exactly the object a single host would have computed — equal floats,
equal dtypes, equal serialised bytes.  These tests assert that with
``==`` and string equality, never ``allclose``.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.codes.registry import make_code
from repro.crossbar.montecarlo import simulate_cave_yield, simulate_margin_yield
from repro.crossbar.spec import CrossbarSpec
from repro.dist import (
    ShardSpec,
    launch,
    load_job,
    merge_results,
    pending_shards,
    plan_mc_shards,
    plan_sweep_shards,
    run_shard,
    status,
    write_job,
)
from repro.dist.manifest import manifest_path_for, results_dir_for
from repro.dist.spec import split_even
from repro.exp.designpoint import design_grid
from repro.exp.pipeline import run_sweep
from repro.exp.results import SweepResult

SPEC = CrossbarSpec()
GRID = design_grid(
    families=("TC", "BGC"), lengths=(6, 8), axes={"sigma_t": (0.04, 0.05)}
)


class TestPlanning:
    def test_plan_is_deterministic(self):
        a = plan_sweep_shards(GRID, ("yield",), shards=3, spec=SPEC)
        b = plan_sweep_shards(GRID, ("yield",), shards=3, spec=SPEC)
        assert a.key == b.key
        assert [s.key for s in a.shards] == [s.key for s in b.shards]

    def test_job_key_tracks_every_input(self):
        base = plan_mc_shards(
            "marginmc", "BGC", 8, shards=2, samples=4096, spec=SPEC
        )
        for kwargs in (
            {"seed": 1},
            {"samples": 8192},
            {"k_sigma": 2.0},
            {"stream_block": 1024},
        ):
            other = plan_mc_shards(
                "marginmc", "BGC", 8, shards=2, spec=SPEC,
                **{"samples": 4096, **kwargs},
            )
            assert other.key != base.key

    def test_split_even_partitions_exactly(self):
        for total in (1, 5, 16, 97):
            for parts in (1, 2, 3, 7, 200):
                ranges = split_even(total, parts)
                assert ranges[0][0] == 0 and ranges[-1][1] == total
                assert all(a[1] == b[0] for a, b in zip(ranges, ranges[1:]))
                widths = [hi - lo for lo, hi in ranges]
                assert max(widths) - min(widths) <= 1
                assert len(ranges) == min(parts, total)

    def test_shard_spec_roundtrip_and_units(self):
        plan = plan_mc_shards(
            "marginmc", "BGC", 8, shards=3, samples=10_000,
            spec=SPEC, stream_block=1024,
        )
        assert sum(s.units for s in plan.shards) == 10_000
        for shard in plan.shards:
            clone = ShardSpec.from_dict(
                json.loads(json.dumps(shard.to_dict()))
            )
            assert clone == shard and clone.key == shard.key

    def test_shared_stream_kernels_rejected(self):
        from repro.sim.engine import RandomCodesKernel, run_block_moments

        with pytest.raises(ValueError, match="shared-stream"):
            run_block_moments(RandomCodesKernel(8, 32), 4096)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown MC job kind"):
            plan_mc_shards("margin", "BGC", 8, shards=2, samples=4096)


class TestByteIdenticalMerge:
    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    def test_marginmc_any_shard_count(self, tmp_path, shards):
        plan = plan_mc_shards(
            "marginmc", "BGC", 8, shards=shards, samples=6000,
            spec=SPEC, seed=3, k_sigma=2.5, stream_block=1024,
        )
        job = tmp_path / f"job{shards}"
        write_job(job, plan)
        launch(job, workers=1)
        merged = merge_results(job)
        single = simulate_margin_yield(
            SPEC, make_code("BGC", 2, 8), samples=6000, seed=3,
            k_sigma=2.5, stream_block=1024,
        )
        assert merged == single  # dataclass equality: every float bit-equal

    def test_cavemc_matches_batched_engine(self, tmp_path):
        plan = plan_mc_shards(
            "cavemc", "TC", 10, shards=3, samples=5000,
            spec=SPEC, seed=7, stream_block=512,
        )
        write_job(tmp_path / "job", plan)
        launch(tmp_path / "job", workers=1)
        merged = merge_results(tmp_path / "job")
        single = simulate_cave_yield(
            SPEC, make_code("TC", 2, 10), samples=5000, seed=7, stream_block=512
        )
        assert merged == single

    @pytest.mark.parametrize("shards", [1, 3, 4])
    def test_sweep_grid_any_shard_count(self, tmp_path, shards):
        metrics = ("yield", "margins")
        plan = plan_sweep_shards(GRID, metrics, shards=shards, spec=SPEC)
        job = tmp_path / f"job{shards}"
        write_job(job, plan)
        launch(job, workers=1)
        merged = merge_results(job)
        single = run_sweep(GRID, metrics, spec=SPEC, jobs=1)
        assert isinstance(merged, SweepResult)
        assert merged == single  # columns, dtypes and values
        assert merged.to_csv_string() == single.to_csv_string()
        assert merged.to_json_string() == single.to_json_string()

    def test_sweep_multiprocess_launch(self, tmp_path):
        plan = plan_sweep_shards(GRID, ("yield",), shards=4, spec=SPEC)
        write_job(tmp_path / "job", plan)
        report = launch(tmp_path / "job", workers=2)
        assert report.ran == (0, 1, 2, 3)
        assert merge_results(tmp_path / "job") == run_sweep(
            GRID, ("yield",), spec=SPEC, jobs=1
        )


class TestCheckpointResume:
    def make_job(self, tmp_path, shards=3):
        plan = plan_sweep_shards(GRID, ("yield",), shards=shards, spec=SPEC)
        job = tmp_path / "job"
        write_job(job, plan)
        return job, plan

    def test_launch_skips_completed_shards(self, tmp_path):
        job, plan = self.make_job(tmp_path)
        first = launch(job, workers=1)
        assert first.ran == (0, 1, 2) and first.skipped == ()
        again = launch(job, workers=1)
        assert again.ran == () and again.skipped == (0, 1, 2)

    def test_truncated_manifest_forces_rerun(self, tmp_path):
        """Kill-and-resume: losing manifest lines re-runs those shards and
        the resumed merge is byte-identical to the uninterrupted one."""
        job, plan = self.make_job(tmp_path)
        launch(job, workers=1)
        uninterrupted = merge_results(job).to_csv_string()

        manifest = manifest_path_for(job)
        lines = manifest.read_text().splitlines()
        manifest.write_text(lines[0] + "\n")  # simulate a mid-job crash
        assert [s.index for s in pending_shards(job)] != []

        resumed = launch(job, workers=1)
        assert set(resumed.ran) == {1, 2} and resumed.skipped == (0,)
        assert merge_results(job).to_csv_string() == uninterrupted

    def test_missing_result_file_forces_rerun(self, tmp_path):
        """A manifest line without its result file does not count as done."""
        job, plan = self.make_job(tmp_path)
        launch(job, workers=1)
        victim = plan.shards[1]
        (results_dir_for(job) / victim.file_name).unlink()
        report = launch(job, workers=1)
        assert report.ran == (1,)
        assert merge_results(job) == run_sweep(GRID, ("yield",), spec=SPEC)

    def test_merge_refuses_incomplete_job(self, tmp_path):
        job, plan = self.make_job(tmp_path)
        with pytest.raises(FileNotFoundError, match=r"\[0, 1, 2\]"):
            merge_results(job)

    def test_status_reports_progress(self, tmp_path):
        job, plan = self.make_job(tmp_path)
        assert status(job)["completed"] == 0
        launch(job, workers=1)
        report = status(job)
        assert report["completed"] == 3 and report["pending"] == []
        assert report["job_key"] == plan.key

    def test_result_from_wrong_job_is_detected(self, tmp_path):
        job, plan = self.make_job(tmp_path)
        launch(job, workers=1)
        target = plan.shards[0]
        path = results_dir_for(job) / target.file_name
        doc = json.loads(path.read_text())
        doc["shard_key"] = "000000000000"
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="does not match shard"):
            merge_results(job)


class TestRunShard:
    def test_result_document_shape(self):
        plan = plan_mc_shards(
            "marginmc", "BGC", 8, shards=2, samples=3000,
            spec=SPEC, stream_block=1024,
        )
        doc = run_shard(plan.shards[1])
        assert doc["kind"] == "marginmc"
        assert doc["job_key"] == plan.key
        assert doc["shard_key"] == plan.shards[1].key
        assert doc["units"] == plan.shards[1].units
        assert doc["elapsed_s"] > 0
        assert "make_code" in doc["cache"]
        states = doc["data"]["metrics"]["margin_yield"]
        assert sum(s[0] for s in states) == plan.shards[1].units

    def test_mc_shards_cover_disjoint_blocks(self):
        plan = plan_mc_shards(
            "cavemc", "TC", 8, shards=3, samples=10_000,
            spec=SPEC, stream_block=1024,
        )
        ranges = [
            (s.payload["block_start"], s.payload["block_stop"])
            for s in plan.shards
        ]
        assert ranges[0][0] == 0
        assert all(a[1] == b[0] for a, b in zip(ranges, ranges[1:]))
        assert ranges[-1][1] == 10  # ceil(10000 / 1024)


class TestShardCLI:
    def run(self, capsys, *argv):
        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_plan_launch_merge_csv_byte_equal_to_sweep(self, capsys, tmp_path):
        job = str(tmp_path / "job")
        merged_csv = tmp_path / "merged.csv"
        single_csv = tmp_path / "single.csv"
        grid = ["--families", "TC,BGC", "--lengths", "6,8", "--metric", "yield,area"]

        code, out = self.run(
            capsys, "shard", "plan", "sweep", job, "--shards", "2", *grid
        )
        assert code == 0 and "planned sweep job" in out

        plan = load_job(job)
        spec_file = tmp_path / "job" / "shards" / plan.shards[0].file_name
        code, out = self.run(capsys, "shard", "run", str(spec_file))
        assert code == 0 and "shard 1/2" in out

        code, out = self.run(capsys, "shard", "launch", job, "--workers", "1")
        assert code == 0 and "ran 1 shard(s) [1], skipped 1" in out

        code, out = self.run(capsys, "shard", "status", job)
        assert code == 0 and json.loads(out)["pending"] == []

        code, _ = self.run(
            capsys, "shard", "merge", job,
            "--format", "csv", "--output", str(merged_csv),
        )
        assert code == 0
        code, _ = self.run(
            capsys, "sweep", *grid, "--format", "csv", "--output", str(single_csv),
        )
        assert code == 0
        assert merged_csv.read_bytes() == single_csv.read_bytes()

    def test_marginmc_cli_roundtrip(self, capsys, tmp_path):
        job = str(tmp_path / "mc")
        code, _ = self.run(
            capsys, "shard", "plan", "marginmc", job, "BGC", "-M", "8",
            "--samples", "4000", "--shards", "3", "--stream-block", "1024",
        )
        assert code == 0
        code, _ = self.run(capsys, "shard", "launch", job, "--workers", "1")
        assert code == 0
        code, out = self.run(capsys, "shard", "merge", job, "--format", "json")
        assert code == 0
        payload = json.loads(out)
        single = simulate_margin_yield(
            CrossbarSpec(), make_code("BGC", 2, 8),
            samples=4000, seed=0, k_sigma=3.0, stream_block=1024,
        )
        assert payload["samples"] == 4000
        assert payload["mean_margin_yield"] == single.mean_margin_yield
        assert payload["std_margin_yield"] == single.std_margin_yield


class TestEnginePrimitives:
    def test_total_blocks_and_block_width(self):
        from repro.sim.batch import block_width, total_blocks

        assert total_blocks(10_000, 1024) == 10
        assert total_blocks(1024, 1024) == 1
        widths = [block_width(i, 10_000, 1024) for i in range(10)]
        assert widths[:9] == [1024] * 9 and widths[9] == 10_000 - 9 * 1024
        assert sum(widths) == 10_000
        with pytest.raises(ValueError, match="out of range"):
            block_width(10, 10_000, 1024)

    def test_run_block_moments_fold_equals_engine(self):
        from repro.sim.engine import MonteCarloEngine, run_block_moments
        from repro.sim.margins import MarginYieldKernel
        from repro.crossbar.yield_model import decoder_for
        from repro.sim.accumulators import StreamingMoments

        decoder = decoder_for(SPEC, make_code("BGC", 2, 8))
        kernel = MarginYieldKernel(decoder, 3.0)
        engine = MonteCarloEngine(kernel, stream_block=512)
        single = engine.run(3000, 5)

        half = run_block_moments(
            kernel, 3000, 5, block_start=0, block_stop=3, stream_block=512
        )
        rest = run_block_moments(
            kernel, 3000, 5, block_start=3, stream_block=512
        )
        for name in kernel.metrics:
            acc = StreamingMoments()
            for states in (*half, *rest):
                acc.merge(StreamingMoments.from_state(*states[name]))
            assert acc.count == single.samples
            assert acc.mean == single[name].mean
            assert acc.std == single[name].std
