"""Property test: SECDED recovery under k injected bit errors.

The defining property of the extended Hamming code shipped with the
crossbar memory: a stored block survives exactly as many bit flips as
the correction radius —

* ``k = 0``: decode returns the payload untouched;
* ``k = 1`` (<= correction radius): decode recovers the payload and
  reports the flipped position;
* ``k = 2`` (> correction radius): decode *detects* the damage and
  raises instead of returning silently-wrong data.

Checked with Hypothesis over random payloads, error positions and code
sizes, for both the scalar codec and the vectorised block codec.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crossbar.ecc import EccError, SecdedCode, decode_blocks, encode_blocks

#: Correction radius of SECDED: one bit per block.
CORRECTION_RADIUS = 1


@st.composite
def payload_and_errors(draw):
    """A random (code, payload, error positions) triple with 0-2 errors."""
    parity_bits = draw(st.integers(min_value=2, max_value=6))
    code = SecdedCode(parity_bits=parity_bits)
    payload = np.array(
        draw(
            st.lists(
                st.booleans(),
                min_size=code.data_bits,
                max_size=code.data_bits,
            )
        ),
        dtype=bool,
    )
    k = draw(st.integers(min_value=0, max_value=2))
    positions = draw(
        st.lists(
            st.integers(min_value=0, max_value=code.block_bits - 1),
            min_size=k,
            max_size=k,
            unique=True,
        )
    )
    return code, payload, positions


@settings(max_examples=200, deadline=None)
@given(payload_and_errors())
def test_roundtrip_recovers_iff_within_correction_radius(case):
    code, payload, positions = case
    block = code.encode(payload)
    for position in positions:
        block[position] = ~block[position]

    if len(positions) <= CORRECTION_RADIUS:
        decoded, corrected = code.decode(block)
        assert np.array_equal(decoded, payload)
        if positions:
            assert corrected == positions[0]
        else:
            assert corrected == -1
    else:
        with pytest.raises(EccError):
            code.decode(block)


@settings(max_examples=200, deadline=None)
@given(payload_and_errors())
def test_vectorised_codec_agrees_with_scalar(case):
    code, payload, positions = case
    block = encode_blocks(code, payload[None, :])[0]
    assert np.array_equal(block, code.encode(payload))
    for position in positions:
        block[position] = ~block[position]

    decoded, corrected, uncorrectable = decode_blocks(code, block[None, :])
    if len(positions) <= CORRECTION_RADIUS:
        assert not uncorrectable[0]
        assert np.array_equal(decoded[0], payload)
        scalar_decoded, scalar_corrected = code.decode(block)
        assert corrected[0] == scalar_corrected
        assert np.array_equal(decoded[0], scalar_decoded)
    else:
        assert uncorrectable[0]
        with pytest.raises(EccError):
            code.decode(block)
