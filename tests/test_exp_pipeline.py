"""Tests for the design-space evaluation pipeline (repro.exp).

Covers the four contract areas of the refactor:

* :class:`DesignPoint` normalisation / hashability / grid generation;
* :class:`SweepResult` columnar <-> record round-trips and serialisers;
* executor determinism (``jobs=1`` == ``jobs=4``, any chunking) and
  per-process cache behaviour;
* golden equivalence: the rebased fig7/fig8 generators, family sweeps
  and optimizer reproduce the pre-refactor per-point loops exactly.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.codes.base import CodeError
from repro.codes.registry import ALL_FAMILIES, make_code
from repro.crossbar.area import effective_bit_area
from repro.crossbar.yield_model import crossbar_yield
from repro.exp import (
    DesignPoint,
    SweepParams,
    SweepResult,
    cache_stats,
    clear_caches,
    design_grid,
    evaluate_point,
    function_sweep,
    run_sweep,
)

#: A >= 60-point grid (20 admissible code points x 3 sigma values).
GRID_AXES = {"sigma_t": (0.04, 0.05, 0.06)}


@pytest.fixture
def grid() -> list[DesignPoint]:
    return design_grid(axes=GRID_AXES)


class TestDesignPoint:
    def test_normalises_family_and_sorts_overrides(self):
        a = DesignPoint.make(" bgc ", 8, sigma_t=0.05, window_margin=0.9)
        b = DesignPoint.make("BGC", 8, window_margin=0.9, sigma_t=0.05)
        assert a == b
        assert a.family == "BGC"
        assert hash(a) == hash(b)
        assert a.overrides == (("sigma_t", 0.05), ("window_margin", 0.9))

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="unknown spec override"):
            DesignPoint.make("TC", 8, pitch=99.0)

    def test_code_is_memoized_instance(self):
        p = DesignPoint.make("bgc", 8)
        assert p.code() is make_code("BGC", 2, 8)

    def test_resolved_spec_applies_overrides(self, spec):
        p = DesignPoint.make("TC", 8, sigma_t=0.07, nanowires=25)
        resolved = p.resolved_spec(spec)
        assert resolved.sigma_t == 0.07
        assert resolved.nanowires_per_half_cave == 25
        # no overrides -> the base spec itself (cache-friendly identity)
        assert DesignPoint.make("TC", 8).resolved_spec(spec) == spec

    def test_axes_columns(self):
        p = DesignPoint.make("HC", 6, n=2, sigma_t=0.05)
        assert p.axes() == {
            "family": "HC",
            "n": 2,
            "total_length": 6,
            "sigma_t": 0.05,
        }
        assert p.label == "HC/6"


class TestDesignGrid:
    def test_skips_inadmissible_points(self):
        points = design_grid(families=("TC", "HC"), lengths=(5, 6, 7, 8))
        labels = [p.label for p in points]
        assert labels == ["TC/6", "TC/8", "HC/6", "HC/8"]

    def test_unknown_family_rejected_not_dropped(self):
        with pytest.raises(CodeError, match="unknown code family"):
            design_grid(families=("TC", "XYZ"), lengths=(6,))

    def test_unvalidated_override_key_rejected_at_resolution(self, spec):
        rogue = DesignPoint("TC", 8, 2, (("sigma", 0.2),))
        with pytest.raises(ValueError, match="unknown spec override"):
            rogue.resolved_spec(spec)

    def test_crosses_axes(self, grid):
        assert len(grid) == 60  # 5 families x 4 lengths x 3 sigma values
        assert len(set(grid)) == 60
        for family in ALL_FAMILIES:
            assert sum(1 for p in grid if p.family == family) == 12

    def test_every_point_is_buildable(self, grid):
        for p in grid:
            assert p.code().total_length == p.total_length


class TestSweepResult:
    RECORDS = [
        {"family": "TC", "m": 6, "y": 0.5, "ok": True},
        {"family": "BGC", "m": 8, "y": 0.75, "ok": False},
    ]

    def test_record_round_trip_preserves_types(self):
        back = SweepResult.from_records(self.RECORDS).to_records()
        assert back == self.RECORDS
        for rec in back:
            assert type(rec["family"]) is str
            assert type(rec["m"]) is int
            assert type(rec["y"]) is float
            assert type(rec["ok"]) is bool

    def test_columns_are_typed_arrays(self):
        r = SweepResult.from_records(self.RECORDS)
        assert r.column("m").dtype == np.int64
        assert r.column("y").dtype == np.float64
        assert r.column("ok").dtype == np.bool_
        assert len(r) == 2 and r.fields == ("family", "m", "y", "ok")

    def test_inconsistent_records_rejected(self):
        with pytest.raises(ValueError):
            SweepResult.from_records([{"a": 1}, {"b": 2}])
        with pytest.raises(ValueError):
            SweepResult.from_records([])

    def test_csv_and_json_round_trip(self, tmp_path):
        r = SweepResult.from_records(self.RECORDS)
        text = r.to_csv_string().splitlines()
        assert text[0] == "family,m,y,ok"
        assert text[1] == "TC,6,0.5,True"
        data = json.loads(r.to_json_string())
        assert data == [
            {"family": "TC", "m": 6, "y": 0.5, "ok": True},
            {"family": "BGC", "m": 8, "y": 0.75, "ok": False},
        ]
        r.to_csv(tmp_path / "r.csv")
        r.to_json(tmp_path / "r.json")
        assert (tmp_path / "r.csv").read_text() == r.to_csv_string()

    def test_where_and_concat(self):
        r = SweepResult.from_records(self.RECORDS)
        tc = r.where(r.column("m") == 6)
        assert len(tc) == 1 and tc.to_records()[0]["family"] == "TC"
        both = SweepResult.concat([tc, r.where(r.column("m") == 8)])
        assert both == r

    def test_equality_is_exact(self):
        r = SweepResult.from_records(self.RECORDS)
        other = SweepResult.from_records(
            [dict(rec, y=rec["y"] + 1e-12) for rec in self.RECORDS]
        )
        assert r != other


class TestPipelineExecution:
    METRICS = ("yield", "area")

    def test_serial_equals_parallel(self, grid, spec):
        serial = run_sweep(grid, self.METRICS, spec=spec, jobs=1)
        parallel = run_sweep(grid, self.METRICS, spec=spec, jobs=4)
        assert serial == parallel
        assert serial.to_json_string() == parallel.to_json_string()
        assert serial.to_csv_string() == parallel.to_csv_string()

    def test_chunking_does_not_change_results(self, grid, spec):
        a = run_sweep(grid, self.METRICS, spec=spec, jobs=1, chunksize=1)
        b = run_sweep(grid, self.METRICS, spec=spec, jobs=1, chunksize=17)
        c = run_sweep(grid, self.METRICS, spec=spec, jobs=3, chunksize=7)
        assert a == b == c

    def test_row_order_follows_point_order(self, grid, spec):
        result = run_sweep(grid, ("complexity",), spec=spec, jobs=2)
        assert result.column("family").tolist() == [p.family for p in grid]
        assert result.column("total_length").tolist() == [p.total_length for p in grid]

    def test_montecarlo_metric_deterministic_across_jobs(self, spec):
        points = design_grid(families=("TC", "BGC"), lengths=(6, 8))
        params = SweepParams(mc_samples=200, mc_seed=7)
        a = run_sweep(points, ("montecarlo",), spec=spec, jobs=1, params=params)
        b = run_sweep(points, ("montecarlo",), spec=spec, jobs=4, params=params)
        assert a == b
        assert a.column("mc_samples").tolist() == [200] * len(points)

    def test_unknown_metric_rejected(self, grid, spec):
        with pytest.raises(KeyError, match="unknown metric"):
            run_sweep(grid[:2], ("bogus",), spec=spec)
        with pytest.raises(KeyError):
            evaluate_point(grid[0], spec, metrics=())

    def test_empty_points_rejected(self, spec):
        with pytest.raises(ValueError):
            run_sweep([], ("yield",), spec=spec)
        with pytest.raises(ValueError):
            run_sweep(design_grid(), ("yield",), spec=spec, jobs=0)

    def test_mixed_override_sets_rejected(self, spec):
        points = [
            DesignPoint.make("TC", 6),
            DesignPoint.make("TC", 6, sigma_t=0.05),
        ]
        with pytest.raises(ValueError, match="spec-override set"):
            run_sweep(points, ("yield",), spec=spec)


class TestCacheBehaviour:
    def test_sweep_hits_construction_caches(self, spec):
        clear_caches()
        grid = design_grid(axes=GRID_AXES)  # warms make_code via admissibility
        run_sweep(grid, ("yield", "area"), spec=spec, jobs=1)
        stats = cache_stats()
        # 20 unique (family, length) codes behind 60 grid points
        assert stats["make_code"]["misses"] == 20
        assert stats["make_code"]["hits"] >= 60
        # one decoder per (spec, code) point; yield+area reuse it:
        # area's evaluator alone resolves it twice more per point
        assert stats["decoder_for"]["misses"] == 60
        assert stats["decoder_for"]["hits"] >= 2 * 60
        # 3 perturbed specs behind 60 points
        assert stats["cached_spec"]["misses"] == 3
        assert stats["cached_spec"]["hits"] == 57

    def test_repeat_sweep_is_all_hits(self, spec):
        clear_caches()
        grid = design_grid(axes=GRID_AXES)
        first = run_sweep(grid, ("yield",), spec=spec)
        misses_after_first = {name: s["misses"] for name, s in cache_stats().items()}
        second = run_sweep(grid, ("yield",), spec=spec)
        assert second == first
        for name, s in cache_stats().items():
            assert s["misses"] == misses_after_first[name], name

    def test_make_code_shares_normalised_names(self):
        clear_caches()
        assert make_code("bgc", 2, 8) is make_code("BGC", 2, 8)
        assert make_code(" Bgc ", 2, 8) is make_code("BGC", 2, 8)
        assert make_code.cache_info().misses == 1

    def test_failed_builds_are_not_cached(self):
        with pytest.raises(CodeError):
            make_code("TC", 2, 7)
        with pytest.raises(CodeError):
            make_code("TC", 2, 7)

    def test_shared_fabrication_arrays_are_read_only(self, spec):
        from repro.crossbar.yield_model import decoder_for

        decoder = decoder_for(spec, make_code("BGC", 2, 8))
        for arr in (decoder.patterns, decoder.nu, decoder.plan.steps):
            with pytest.raises(ValueError):
                arr[0] = 0


class TestGoldenEquivalence:
    """The rebased consumers reproduce the pre-refactor loops exactly."""

    def test_fig7_matches_per_point_loop(self, spec):
        from repro.analysis.figures import fig7_crossbar_yield

        expected = {}
        for family, lengths in (
            ("TC", (6, 8, 10)),
            ("BGC", (6, 8, 10)),
            ("HC", (4, 6, 8)),
            ("AHC", (4, 6, 8)),
        ):
            expected[family] = [
                (m, crossbar_yield(spec, make_code(family, 2, m)).cave_yield)
                for m in lengths
            ]
        assert fig7_crossbar_yield(spec) == expected
        assert fig7_crossbar_yield(spec, jobs=3) == expected

    def test_fig8_matches_per_point_loop(self, spec):
        from repro.analysis.figures import fig8_bit_area

        expected = {}
        for family, lengths in (
            ("TC", (6, 8, 10)),
            ("GC", (6, 8, 10)),
            ("BGC", (6, 8, 10)),
            ("HC", (4, 6, 8)),
            ("AHC", (4, 6, 8)),
        ):
            expected[family] = [
                (
                    m,
                    effective_bit_area(
                        spec, make_code(family, 2, m)
                    ).effective_bit_area_nm2,
                )
                for m in lengths
            ]
        assert fig8_bit_area(spec) == expected
        assert fig8_bit_area(spec, jobs=3) == expected

    def test_family_sweeps_return_identical_reports(self, spec):
        from repro.crossbar.area import family_area_sweep
        from repro.crossbar.yield_model import family_yield_sweep

        lengths = (6, 8, 10)
        assert family_yield_sweep(spec, "BGC", lengths) == [
            crossbar_yield(spec, make_code("BGC", 2, m)) for m in lengths
        ]
        assert family_area_sweep(spec, "BGC", lengths) == [
            effective_bit_area(spec, make_code("BGC", 2, m)) for m in lengths
        ]

    def test_objective_tables_stay_in_sync(self):
        from repro.core.objectives import OBJECTIVES
        from repro.core.optimizer import _OBJECTIVE_COLUMNS

        assert set(_OBJECTIVE_COLUMNS) == set(OBJECTIVES)

    @pytest.mark.parametrize(
        "objective", ["complexity", "variability", "yield", "bit_area"]
    )
    def test_optimizer_costs_match_objective_functions(self, spec, objective):
        from repro.core.objectives import get_objective
        from repro.core.optimizer import explore_designs

        score = get_objective(objective)
        result = explore_designs(objective, spec=spec, jobs=2)
        for point in result.points:
            assert point.cost == score(spec, point.design.space)

    def test_function_sweep_matches_legacy_records(self):
        from repro.analysis.sweeps import grid_sweep

        axes = {"a": [1, 2], "b": [10, 20]}
        records = grid_sweep(axes, lambda a, b: {"sum": a + b})
        table = function_sweep(axes, lambda a, b: {"sum": a + b})
        assert records == table.to_records()

    def test_shims_keep_legacy_edge_cases(self):
        from repro.analysis.sweeps import grid_sweep, sweep

        # iterator-valued axes are materialised, not consumed twice
        records = grid_sweep({"x": (i for i in range(3))}, lambda x: {"y": 2 * x})
        assert records == [{"x": 0, "y": 0}, {"x": 1, "y": 2}, {"x": 2, "y": 4}]
        # per-value result fields (ragged records) stay allowed
        ragged = sweep("x", [1, 2], lambda v: {"big": True} if v > 1 else {})
        assert ragged == [{"x": 1}, {"x": 2, "big": True}]
        # empty axes yield the historical empty list
        assert sweep("x", [], lambda v: {"y": v}) == []
        assert grid_sweep({"x": []}, lambda x: {"y": x}) == []


class TestSweepCLI:
    GRID_ARGS = [
        "sweep",
        "--metric",
        "yield,area",
        "--axis",
        "sigma_t=0.04,0.05,0.06",
        "--format",
        "json",
    ]

    def run(self, capsys, *argv):
        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_parallel_output_byte_identical_to_serial(self, capsys):
        code, serial = self.run(capsys, *self.GRID_ARGS, "--jobs", "1")
        assert code == 0
        code, parallel = self.run(capsys, *self.GRID_ARGS, "--jobs", "4")
        assert code == 0
        # the result rows are byte-identical for any --jobs; the cache
        # section is a process-local diagnostic and legitimately differs
        # (workers warm their own memos)
        serial_doc, parallel_doc = json.loads(serial), json.loads(parallel)
        assert json.dumps(parallel_doc["records"]) == json.dumps(
            serial_doc["records"]
        )
        assert parallel_doc["design_points"] == serial_doc["design_points"] == 60
        assert len(serial_doc["records"]) == 60

    def test_json_format_surfaces_cache_counters(self, capsys):
        code, out = self.run(capsys, *self.GRID_ARGS, "--jobs", "1")
        assert code == 0
        cache = json.loads(out)["cache"]
        assert {"make_code", "decoder_for", "cached_spec"} <= set(cache)
        for counters in cache.values():
            assert {"hits", "misses", "currsize"} <= set(counters)
            assert all(v >= 0 for v in counters.values())
        # the memoized pipeline actually hits: a 60-point grid shares
        # codes and decoders across points
        assert cache["make_code"]["hits"] > 0

    def test_csv_format_and_output_file(self, capsys, tmp_path):
        out_path = tmp_path / "sweep.csv"
        code, out = self.run(
            capsys,
            "sweep",
            "--families",
            "TC,BGC",
            "--lengths",
            "6,8",
            "--metric",
            "complexity",
            "--format",
            "csv",
            "--output",
            str(out_path),
        )
        assert code == 0 and "wrote" in out
        lines = out_path.read_text().splitlines()
        assert (
        lines[0] == "family,n,total_length,phi,sigma_norm_V2,average_variability_V2"
    )
        assert len(lines) == 5

    def test_table_format_reports_point_count(self, capsys):
        code, out = self.run(
            capsys,
            "sweep",
            "--families",
            "HC",
            "--lengths",
            "4,6",
        )
        assert code == 0
        assert "2 design points" in out and "cave_yield" in out

    def test_platform_knobs_apply(self, capsys):
        _, harsh = self.run(
            capsys,
            "--sigma-t",
            "0.10",
            "sweep",
            "--families",
            "BGC",
            "--lengths",
            "8",
            "--format",
            "json",
        )
        _, mild = self.run(
            capsys,
            "--sigma-t",
            "0.03",
            "sweep",
            "--families",
            "BGC",
            "--lengths",
            "8",
            "--format",
            "json",
        )
        assert (
            json.loads(harsh)["records"][0]["cave_yield"]
            < json.loads(mild)["records"][0]["cave_yield"]
        )

    def test_bad_axis_spec_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--axis", "sigma_t"])
        with pytest.raises(SystemExit, match="unknown spec override"):
            main(["sweep", "--axis", "bogus=1,2"])
        with pytest.raises(SystemExit, match="malformed value list"):
            main(["sweep", "--axis", "sigma_t=0.03,"])
        with pytest.raises(SystemExit, match="unknown code family"):
            main(["sweep", "--families", "TC,XYZ", "--lengths", "6"])

    def test_empty_grid_exits(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--families", "TC", "--lengths", "5"])
