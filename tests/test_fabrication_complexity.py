"""Unit tests for repro.fabrication.complexity."""

import numpy as np
import pytest

from repro.codes import GrayCode, TreeCode, make_code
from repro.fabrication.complexity import (
    code_complexity,
    distinct_nonzero_count,
    fabrication_complexity,
    plan_complexity,
    step_complexities,
)
from repro.fabrication.doping import DopingPlan


class TestDistinctNonzeroCount:
    def test_paper_example3_rows(self):
        assert distinct_nonzero_count(np.array([0, -5, 0, 2])) == 2
        assert distinct_nonzero_count(np.array([-2, 7, 5, -7])) == 4
        assert distinct_nonzero_count(np.array([4, 2, 4, 9])) == 3

    def test_all_zero_row(self):
        assert distinct_nonzero_count(np.zeros(4)) == 0

    def test_repeated_values_counted_once(self):
        assert distinct_nonzero_count(np.array([3.0, 3.0, 3.0])) == 1

    def test_tolerance_merges_near_equal(self):
        row = np.array([1.0, 1.0 + 1e-12, 2.0])
        assert distinct_nonzero_count(row) == 2

    def test_tolerance_respects_scale(self):
        row = np.array([1e18, 1e18 * (1 + 1e-12), 2e18])
        assert distinct_nonzero_count(row) == 2

    def test_sign_matters(self):
        assert distinct_nonzero_count(np.array([5.0, -5.0])) == 2


class TestStepComplexities:
    def test_paper_example3(self, paper_map, example1_pattern):
        plan = DopingPlan.from_pattern(example1_pattern, paper_map)
        phi = step_complexities(plan.steps)
        assert phi.tolist() == [2, 4, 3]
        assert fabrication_complexity(plan.steps) == 9

    def test_paper_example6_gray(self, paper_map, example5_pattern):
        plan = DopingPlan.from_pattern(example5_pattern, paper_map)
        phi = step_complexities(plan.steps)
        assert phi.tolist() == [2, 2, 3]
        assert fabrication_complexity(plan.steps) == 7

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            step_complexities(np.zeros(3))


class TestPlanAndCodeComplexity:
    def test_plan_complexity_matches_function(self, paper_map, example1_pattern):
        plan = DopingPlan.from_pattern(example1_pattern, paper_map)
        assert plan_complexity(plan) == fabrication_complexity(plan.steps)

    def test_binary_codes_cost_two_per_nanowire(self):
        """Fig. 5: Phi constant = 2N for all binary codes (reflection)."""
        for family in ("TC", "GC", "BGC"):
            space = make_code(family, 2, 8)
            assert code_complexity(space, 10) == 20

    def test_ternary_gray_beats_ternary_tree(self):
        """Fig. 5: GC cancels the higher-valence overhead (17% claim)."""
        tc = code_complexity(TreeCode(3, 3), 10)
        gc = code_complexity(GrayCode(3, 3), 10)
        assert gc < tc

    def test_complexity_grows_with_nanowires(self):
        space = make_code("GC", 2, 8)
        assert code_complexity(space, 20) > code_complexity(space, 10)
