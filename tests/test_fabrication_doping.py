"""Unit tests for repro.fabrication.doping."""

import numpy as np
import pytest

from repro.codes import GrayCode, HotCode, make_code
from repro.fabrication.doping import (
    DopingError,
    DopingPlan,
    accumulate_doses,
    default_digit_map,
    final_doping_matrix,
    step_doping_matrix,
    validate_pattern_matrix,
)


class TestValidatePatternMatrix:
    def test_accepts_integer_matrix(self):
        p = validate_pattern_matrix(np.array([[0, 1], [1, 0]]), 2)
        assert p.dtype.kind == "i"

    def test_accepts_integral_floats(self):
        p = validate_pattern_matrix(np.array([[0.0, 1.0]]), 2)
        assert p.dtype.kind == "i"

    def test_rejects_fractional(self):
        with pytest.raises(DopingError):
            validate_pattern_matrix(np.array([[0.5]]), 2)

    def test_rejects_out_of_range(self):
        with pytest.raises(DopingError):
            validate_pattern_matrix(np.array([[0, 2]]), 2)

    def test_rejects_non_2d(self):
        with pytest.raises(DopingError):
            validate_pattern_matrix(np.array([0, 1]), 2)


class TestStepDopingMatrix:
    def test_paper_example2(self, paper_map, example1_pattern):
        d = final_doping_matrix(example1_pattern, paper_map)
        s = step_doping_matrix(d)
        expected = np.array([[0, -5, 0, 2], [-2, 7, 5, -7], [4, 2, 4, 9]], dtype=float)
        assert np.allclose(s, expected)

    def test_last_row_equals_final(self):
        d = np.array([[1.0, 2.0], [3.0, 4.0]])
        s = step_doping_matrix(d)
        assert np.allclose(s[-1], d[-1])

    def test_rejects_non_2d(self):
        with pytest.raises(DopingError):
            step_doping_matrix(np.array([1.0, 2.0]))


class TestAccumulateDoses:
    def test_inverse_of_step_matrix(self, rng):
        d = rng.uniform(1, 10, size=(6, 5))
        assert np.allclose(accumulate_doses(step_doping_matrix(d)), d)

    def test_paper_proposition2(self, paper_map, example1_pattern):
        d = final_doping_matrix(example1_pattern, paper_map)
        s = step_doping_matrix(d)
        assert np.allclose(accumulate_doses(s), d)

    def test_single_row(self):
        s = np.array([[2.0, 3.0]])
        assert np.allclose(accumulate_doses(s), s)

    def test_rejects_non_2d(self):
        with pytest.raises(DopingError):
            accumulate_doses(np.array([1.0]))


class TestDefaultDigitMap:
    def test_levels_match_scheme(self):
        dm = default_digit_map(3)
        assert dm.n == 3
        assert len(dm.vt_levels) == 3

    def test_rejects_mismatched_scheme(self):
        from repro.device.threshold import LevelScheme

        with pytest.raises(DopingError):
            default_digit_map(3, LevelScheme(2))


class TestDopingPlan:
    def test_from_pattern_shapes(self, paper_map, example1_pattern):
        plan = DopingPlan.from_pattern(example1_pattern, paper_map)
        assert plan.nanowires == 3
        assert plan.regions == 4
        assert plan.pattern.shape == plan.final.shape == plan.steps.shape

    def test_verify_holds(self, paper_map, example1_pattern):
        assert DopingPlan.from_pattern(example1_pattern, paper_map).verify()

    def test_from_code_applies_reflection(self):
        plan = DopingPlan.from_code(GrayCode(2, 3), 10)
        assert plan.regions == 6  # reflected: 2 * 3

    def test_from_code_hot_unreflected(self):
        plan = DopingPlan.from_code(HotCode(2, 3), 10)
        assert plan.regions == 6  # M = k * n, no reflection

    def test_from_code_cycles_beyond_space(self):
        plan = DopingPlan.from_code(GrayCode(2, 2), 10)
        assert plan.nanowires == 10
        assert np.array_equal(plan.pattern[0], plan.pattern[4])

    def test_nominal_vt_uses_levels(self):
        plan = DopingPlan.from_code(make_code("TC", 2, 6), 4)
        vt = plan.nominal_vt()
        assert set(np.unique(vt)) <= {0.25, 0.75}

    def test_doping_levels_positive_and_increasing(self):
        plan = DopingPlan.from_code(make_code("TC", 2, 6), 4)
        levels = plan.digit_map.doping_levels()
        assert np.all(levels > 0)
        assert np.all(np.diff(levels) > 0)
