"""Unit tests for repro.device.implant — implantation planning."""

import pytest

from repro.codes import GrayCode
from repro.fabrication.implant import (
    ENERGY_MAX_KEV,
    ImplantError,
    ImplantPlanner,
    ImplantSetting,
    energy_for_range,
    projected_range_nm,
)
from repro.fabrication.doping import DopingPlan
from repro.fabrication.process_flow import DopingEvent, ProcessFlow


class TestRangeFits:
    def test_range_monotone_in_energy(self):
        for species in ("boron", "phosphorus"):
            ranges = [projected_range_nm(species, e) for e in (5, 20, 80)]
            assert ranges[0] < ranges[1] < ranges[2]

    def test_boron_ranges_deeper_than_phosphorus(self):
        """Lighter ions penetrate further at equal energy."""
        assert projected_range_nm("boron", 30) > projected_range_nm(
            "phosphorus", 30
        )

    def test_energy_range_roundtrip(self):
        for species in ("boron", "phosphorus"):
            for energy in (5.0, 30.0, 120.0):
                rp = projected_range_nm(species, energy)
                assert energy_for_range(species, rp) == pytest.approx(energy)

    def test_plausible_magnitudes(self):
        """B at 10 keV lands a few tens of nm deep (textbook value)."""
        assert 20 < projected_range_nm("boron", 10) < 60

    def test_rejects_unknown_species(self):
        with pytest.raises(ImplantError):
            projected_range_nm("argon", 10)

    def test_rejects_out_of_window(self):
        with pytest.raises(ImplantError):
            projected_range_nm("boron", ENERGY_MAX_KEV * 2)
        with pytest.raises(ImplantError):
            energy_for_range("boron", 1e6)
        with pytest.raises(ImplantError):
            energy_for_range("boron", -1)


class TestPlanner:
    @pytest.fixture
    def planner(self):
        return ImplantPlanner()

    def test_species_follows_sign(self, planner):
        assert planner.species_for(1e18) == "boron"
        assert planner.species_for(-1e18) == "phosphorus"
        with pytest.raises(ImplantError):
            planner.species_for(0.0)

    def test_setting_closes_the_loop(self, planner):
        event = DopingEvent(step=0, dose=3e18, regions=(1, 4))
        setting = planner.setting_for(event)
        assert planner.delivered_concentration(setting) == pytest.approx(3e18)
        assert setting.regions == (1, 4)

    def test_negative_dose_closes_the_loop(self, planner):
        event = DopingEvent(step=1, dose=-2e18, regions=(0,))
        setting = planner.setting_for(event)
        assert setting.species == "phosphorus"
        assert planner.delivered_concentration(setting) == pytest.approx(-2e18)

    def test_light_dose_splitting(self, planner):
        hot = DopingEvent(step=0, dose=5e19, regions=(0,))
        setting = planner.setting_for(hot)
        assert setting.passes > 1
        assert setting.dose_per_pass_cm2 <= planner.max_dose_per_pass_cm2

    def test_energy_targets_mid_depth(self, planner):
        event = DopingEvent(step=0, dose=1e18, regions=(0,))
        setting = planner.setting_for(event)
        rp = projected_range_nm(setting.species, setting.energy_kev)
        assert rp == pytest.approx(planner.doped_depth_nm / 2.0, rel=1e-6)

    def test_plan_covers_every_doping_event(self, planner):
        plan = DopingPlan.from_code(GrayCode(2, 3), 10)
        settings = planner.plan(plan)
        flow = ProcessFlow.from_plan(plan)
        assert len(settings) == flow.doping_event_count

    def test_planned_settings_reproduce_doses(self, planner):
        plan = DopingPlan.from_code(GrayCode(2, 3), 8)
        flow = ProcessFlow.from_plan(plan)
        events = [e for e in flow.events if isinstance(e, DopingEvent)]
        for event, setting in zip(events, planner.plan(plan)):
            assert planner.delivered_concentration(setting) == pytest.approx(event.dose)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ImplantError):
            ImplantPlanner(doped_depth_nm=0)
        with pytest.raises(ImplantError):
            ImplantPlanner(activation=0)
        with pytest.raises(ImplantError):
            ImplantPlanner(max_dose_per_pass_cm2=-1)


class TestImplantSetting:
    def test_total_dose(self):
        setting = ImplantSetting(
            species="boron",
            energy_kev=10.0,
            dose_per_pass_cm2=1e13,
            passes=3,
            regions=(0,),
        )
        assert setting.total_dose_cm2 == pytest.approx(3e13)
