"""Unit tests for repro.fabrication.mspt and lithography rules."""

import pytest

from repro.fabrication.lithography import LithographyRules
from repro.fabrication.mspt import (
    CaveGeometry,
    MSPTProcess,
    ProcessError,
    SpacerRecipe,
)


class TestLithographyRules:
    def test_paper_defaults(self):
        rules = LithographyRules()
        assert rules.litho_pitch_nm == 32.0
        assert rules.nanowire_pitch_nm == 10.0
        assert rules.min_contact_width_nm == pytest.approx(48.0)

    def test_min_contact_span(self):
        rules = LithographyRules()
        assert rules.min_contact_span_nanowires == 4  # floor(48 / 10)

    def test_contact_width_covers_group(self):
        rules = LithographyRules()
        assert rules.contact_width_nm(10) == pytest.approx(100.0)
        assert rules.contact_width_nm(2) == pytest.approx(48.0)  # min width

    def test_contact_width_rejects_bad_group(self):
        with pytest.raises(ValueError):
            LithographyRules().contact_width_nm(0)

    def test_boundary_loss(self):
        rules = LithographyRules(contact_gap_factor=1.0, alignment_tolerance_nm=5.0)
        # (32 + 2*5) / 10 = 4.2 nanowires per boundary
        assert rules.boundary_loss_nanowires() == pytest.approx(4.2)

    def test_rejects_inconsistent_pitches(self):
        with pytest.raises(ValueError):
            LithographyRules(litho_pitch_nm=5.0, nanowire_pitch_nm=10.0)

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            LithographyRules(alignment_tolerance_nm=-1.0)


class TestSpacerRecipe:
    def test_pitch_is_sum_of_thicknesses(self):
        recipe = SpacerRecipe(poly_thickness_nm=6, oxide_thickness_nm=4)
        assert recipe.pitch_nm == 10

    def test_rejects_non_positive(self):
        with pytest.raises(ProcessError):
            SpacerRecipe(poly_thickness_nm=0)


class TestCaveGeometry:
    def test_rejects_non_positive(self):
        with pytest.raises(ProcessError):
            CaveGeometry(width_nm=0)


class TestMSPTProcess:
    def test_capacity(self):
        process = MSPTProcess()
        cave = CaveGeometry(width_nm=400)
        assert process.max_spacers_per_half_cave(cave) == 20

    def test_cave_for_roundtrip(self):
        process = MSPTProcess()
        cave = process.cave_for(15)
        assert process.max_spacers_per_half_cave(cave) == 15

    def test_run_produces_pairs(self):
        process = MSPTProcess()
        array = process.run(process.cave_for(8), 8)
        assert array.half_cave_count == 8
        assert len(array.spacers) == 16  # both sides

    def test_symmetry(self):
        process = MSPTProcess()
        array = process.fabricate_half_cave(12)
        assert array.is_symmetric()

    def test_half_cave_ordering(self):
        process = MSPTProcess()
        array = process.fabricate_half_cave(5)
        left = array.half_cave("left")
        assert [s.index for s in left] == list(range(5))
        # first-defined spacer is nearest the cave wall
        assert left[0].left_nm < left[1].left_nm

    def test_half_cave_rejects_bad_side(self):
        array = MSPTProcess().fabricate_half_cave(3)
        with pytest.raises(ProcessError):
            array.half_cave("top")

    def test_run_rejects_overfill(self):
        process = MSPTProcess()
        cave = process.cave_for(5)
        with pytest.raises(ProcessError):
            process.run(cave, 6)

    def test_run_rejects_zero_iterations(self):
        process = MSPTProcess()
        with pytest.raises(ProcessError):
            process.run(process.cave_for(5), 0)

    def test_pitch_independent_of_cave(self):
        process = MSPTProcess(recipe=SpacerRecipe(7, 5))
        array = process.fabricate_half_cave(4)
        assert array.pitch_nm == 12
