"""Unit tests for repro.fabrication.process_flow."""

import numpy as np

from repro.codes import GrayCode, HotCode, TreeCode, make_code
from repro.decoder.variability import dose_count_matrix
from repro.fabrication.doping import DopingPlan
from repro.fabrication.process_flow import DopingEvent, ProcessFlow, SpacerEvent


def flow_for(space, nanowires):
    return ProcessFlow.from_plan(DopingPlan.from_code(space, nanowires))


class TestEventCompilation:
    def test_one_spacer_event_per_nanowire(self):
        flow = flow_for(GrayCode(2, 3), 8)
        assert flow.spacer_event_count == 8

    def test_doping_events_equal_phi(self):
        """Each distinct dose is one litho+implant pass — Def. 4 made real."""
        for space in (TreeCode(2, 3), GrayCode(3, 2), HotCode(2, 3)):
            flow = flow_for(space, 10)
            assert flow.doping_event_count == flow.summary()["phi_check"]

    def test_events_interleaved_in_definition_order(self):
        flow = flow_for(GrayCode(2, 2), 4)
        wire = -1
        for event in flow.events:
            if isinstance(event, SpacerEvent):
                assert event.wire == wire + 1
                wire = event.wire
            else:
                assert event.step == wire  # doping follows its spacer

    def test_doping_event_regions_grouped_by_dose(self):
        flow = flow_for(GrayCode(2, 3), 8)
        for event in flow.events:
            if isinstance(event, DopingEvent):
                assert len(event.regions) >= 1
                assert event.dose != 0.0


class TestReplay:
    def test_replay_reproduces_plan(self):
        for space in (TreeCode(2, 3), GrayCode(3, 2), HotCode(2, 2)):
            flow = flow_for(space, 9)
            assert flow.verify()

    def test_replay_with_paper_example(self, paper_map, example1_pattern):
        plan = DopingPlan.from_pattern(example1_pattern, paper_map)
        flow = ProcessFlow.from_plan(plan)
        assert np.allclose(flow.replay(), plan.final)

    def test_dose_counts_match_def5_nu(self):
        """Operational nu (event replay) equals the Def. 5 formula."""
        for space in (TreeCode(2, 3), GrayCode(2, 4), HotCode(2, 3)):
            plan = DopingPlan.from_code(space, 12)
            flow = ProcessFlow.from_plan(plan)
            assert np.array_equal(flow.dose_counts(), dose_count_matrix(plan.steps))

    def test_summary_fields(self):
        flow = flow_for(make_code("BGC", 2, 8), 10)
        s = flow.summary()
        assert s["nanowires"] == 10
        assert s["regions"] == 8
        assert s["spacer_steps"] == 10
        assert s["doping_steps"] == s["phi_check"]


class TestBatchedReplay:
    """The cumulative-mask replay against the event-by-event reference."""

    def test_replay_matches_loop_reference(self):
        for space in (TreeCode(2, 3), GrayCode(3, 2), HotCode(2, 2)):
            flow = flow_for(space, 9)
            assert np.allclose(flow.replay(), flow.replay(method="loop"))

    def test_dose_counts_exactly_match_loop_reference(self):
        """Counts are integers: the two formulations agree exactly."""
        for space in (TreeCode(2, 4), GrayCode(2, 4), HotCode(2, 3)):
            flow = flow_for(space, 12)
            batched = flow.dose_counts()
            loop = flow.dose_counts(method="loop")
            assert batched.dtype == loop.dtype
            assert np.array_equal(batched, loop)

    def test_replay_with_paper_example_both_methods(
        self, paper_map, example1_pattern
    ):
        plan = DopingPlan.from_pattern(example1_pattern, paper_map)
        flow = ProcessFlow.from_plan(plan)
        assert np.allclose(flow.replay(method="batched"), plan.final)
        assert np.allclose(flow.replay(method="loop"), plan.final)

    def test_unknown_method_rejected(self):
        flow = flow_for(GrayCode(2, 3), 6)
        for call in (flow.replay, flow.dose_counts):
            try:
                call(method="turbo")
            except ValueError as exc:
                assert "turbo" in str(exc)
            else:  # pragma: no cover - defensive
                raise AssertionError("expected ValueError")
