"""Unit tests for repro.fabrication.variation — MSPT process variation."""

import numpy as np
import pytest

from repro.fabrication.mspt import SpacerRecipe
from repro.fabrication.variation import (
    ProcessVariation,
    VariationError,
    estimate_position_sigma,
    sample_spacer_geometry,
)


@pytest.fixture
def recipe():
    return SpacerRecipe(poly_thickness_nm=6, oxide_thickness_nm=4)


@pytest.fixture
def variation():
    return ProcessVariation(poly_thickness_sigma_nm=0.3, oxide_thickness_sigma_nm=0.3)


class TestProcessVariation:
    def test_pitch_sigma_is_rss(self, variation):
        assert variation.pitch_sigma_nm == pytest.approx(np.hypot(0.3, 0.3))

    def test_position_sigma_grows_like_random_walk(self, variation):
        sigmas = [variation.position_sigma_nm(i) for i in (0, 5, 20)]
        assert sigmas[0] < sigmas[1] < sigmas[2]
        # random walk: sigma ~ sqrt(i)
        assert sigmas[2] / sigmas[1] == pytest.approx(np.sqrt(20 / 5), rel=0.15)

    def test_first_spacer_only_own_half_width_error(self, variation):
        assert variation.position_sigma_nm(0) == pytest.approx(0.15)

    def test_suggested_tolerance_near_calibrated_default(self, variation):
        """0.3 nm/layer control at N = 20 suggests ~5.8 nm at 3 sigma —
        consistent with the 5 nm lithography-rule default."""
        tol = variation.suggested_alignment_tolerance_nm(20)
        assert 4.0 < tol < 8.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(VariationError):
            ProcessVariation(poly_thickness_sigma_nm=-1)
        with pytest.raises(VariationError):
            ProcessVariation(break_probability=1.0)
        with pytest.raises(VariationError):
            ProcessVariation().position_sigma_nm(-1)
        with pytest.raises(VariationError):
            ProcessVariation().suggested_alignment_tolerance_nm(20, k_sigma=0)


class TestSampleSpacerGeometry:
    def test_nominal_geometry_when_sigma_zero(self, recipe, rng):
        quiet = ProcessVariation(0.0, 0.0)
        geo = sample_spacer_geometry(recipe, quiet, 5, rng)
        assert np.allclose(geo["left_nm"], [0, 10, 20, 30, 40])
        assert np.allclose(geo["width_nm"], 6.0)
        assert not geo["broken"].any()

    def test_positions_increase(self, recipe, variation, rng):
        geo = sample_spacer_geometry(recipe, variation, 20, rng)
        assert (np.diff(geo["left_nm"]) > 0).all()

    def test_break_probability_applied(self, recipe, rng):
        fragile = ProcessVariation(0.1, 0.1, break_probability=0.5)
        broken = sample_spacer_geometry(recipe, fragile, 2000, rng)["broken"]
        assert broken.mean() == pytest.approx(0.5, abs=0.05)

    def test_oversized_sigma_raises(self, recipe, rng):
        wild = ProcessVariation(5.0, 5.0)
        with pytest.raises(VariationError):
            for _ in range(50):
                sample_spacer_geometry(recipe, wild, 50, rng)

    def test_rejects_zero_wires(self, recipe, variation, rng):
        with pytest.raises(VariationError):
            sample_spacer_geometry(recipe, variation, 0, rng)


class TestEstimatePositionSigma:
    def test_matches_closed_form(self, recipe, variation, rng):
        estimated = estimate_position_sigma(
            recipe, variation, nanowires=15, samples=1500, rng=rng
        )
        analytic = np.array([variation.position_sigma_nm(i) for i in range(15)])
        assert np.allclose(estimated, analytic, rtol=0.12)

    def test_requires_samples(self, recipe, variation, rng):
        with pytest.raises(VariationError):
            estimate_position_sigma(recipe, variation, 5, 1, rng)
