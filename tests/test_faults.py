"""Unit tests for the deterministic fault-injection harness."""

import os

import pytest

from repro import faults
from repro.faults import FaultHit, FaultPlan, FaultRule


@pytest.fixture(autouse=True)
def _clean_plan(monkeypatch):
    """Every test starts and ends with no plan active anywhere."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    monkeypatch.delenv(faults.EPOCH_ENV_VAR, raising=False)
    faults.deactivate()
    monkeypatch.setattr(faults, "_env_spec", None)
    monkeypatch.setattr(faults, "_env_plan", None)
    yield
    faults.deactivate()


class TestParsing:
    def test_full_spec(self):
        plan = FaultPlan.parse(
            "seed=7,dist.crash_after_result=@1,serve.latency=1.0:0.25,"
            "serve.drop=0.3"
        )
        assert plan.seed == 7
        assert plan.rules["dist.crash_after_result"].at_call == 1
        assert plan.rules["serve.latency"].probability == 1.0
        assert plan.rules["serve.latency"].value == 0.25
        assert plan.rules["serve.drop"].probability == 0.3

    def test_whitespace_and_empty_clauses_tolerated(self):
        plan = FaultPlan.parse(" dist.stall=@2 , ,serve.drop=0.5 ")
        assert set(plan.rules) == {"dist.stall", "serve.drop"}

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan.parse("dist.explode=@1")

    def test_malformed_clause_rejected(self):
        with pytest.raises(ValueError, match="malformed fault clause"):
            FaultPlan.parse("dist.stall")

    def test_malformed_value_rejected(self):
        with pytest.raises(ValueError, match="expected a float"):
            FaultPlan.parse("serve.latency=@1:soon")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="must be in"):
            FaultPlan.parse("serve.drop=1.5")

    def test_call_ordinal_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            FaultPlan.parse("dist.stall=@0")

    def test_duplicate_site_rejected(self):
        with pytest.raises(ValueError, match="duplicate fault clause"):
            FaultPlan.parse("dist.stall=@1,dist.stall=@2")


class TestDecisions:
    def test_at_call_fires_exactly_once_in_epoch_zero(self):
        plan = FaultPlan.parse("dist.stall=@2")
        hits = [plan.check("dist.stall") for _ in range(5)]
        assert [h is not None for h in hits] == [False, True, False, False, False]
        assert plan.fired == {"dist.stall": 1}

    def test_at_call_silent_in_retry_epochs(self, monkeypatch):
        monkeypatch.setenv(faults.EPOCH_ENV_VAR, "1")
        plan = FaultPlan.parse("dist.stall=@1")
        assert all(plan.check("dist.stall") is None for _ in range(4))
        assert plan.fired == {}

    def test_probability_one_fires_every_call_every_epoch(self, monkeypatch):
        for epoch in ("0", "3"):
            monkeypatch.setenv(faults.EPOCH_ENV_VAR, epoch)
            plan = FaultPlan.parse("serve.drop=1.0")
            assert all(plan.check("serve.drop") for _ in range(3))

    def test_probability_zero_never_fires(self):
        plan = FaultPlan.parse("serve.drop=0.0")
        assert all(plan.check("serve.drop") is None for _ in range(20))

    def test_probability_draws_are_deterministic(self):
        rule = FaultRule("serve.drop", probability=0.4)
        pattern_a = [rule.decide(9, 0, call) for call in range(1, 50)]
        pattern_b = [rule.decide(9, 0, call) for call in range(1, 50)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)
        # a different seed or epoch reshuffles the pattern
        assert pattern_a != [rule.decide(10, 0, c) for c in range(1, 50)]
        assert pattern_a != [rule.decide(9, 1, c) for c in range(1, 50)]

    def test_unlisted_site_never_fires(self):
        plan = FaultPlan.parse("dist.stall=@1")
        assert plan.check("serve.drop") is None

    def test_hit_carries_value(self):
        plan = FaultPlan.parse("serve.latency=@1:0.75")
        assert plan.check("serve.latency") == FaultHit("serve.latency", 0.75)

    def test_bad_epoch_env_means_zero(self, monkeypatch):
        monkeypatch.setenv(faults.EPOCH_ENV_VAR, "not-a-number")
        assert FaultPlan.epoch() == 0


class TestActivation:
    def test_no_plan_by_default(self):
        assert faults.active_plan() is None
        assert faults.check("dist.stall") is None

    def test_env_plan_parsed_and_cached(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "dist.stall=@1")
        plan = faults.active_plan()
        assert plan is faults.active_plan()  # cached on the spec string
        monkeypatch.setenv(faults.ENV_VAR, "dist.stall=@2")
        assert faults.active_plan() is not plan  # new spec, new plan

    def test_injected_context_manager(self):
        with faults.injected("serve.drop=1.0") as plan:
            assert faults.check("serve.drop") is not None
            assert plan.fired["serve.drop"] == 1
        assert faults.active_plan() is None

    def test_activate_overrides_env(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "dist.stall=@1")
        forced = faults.activate("serve.drop=1.0")
        assert faults.active_plan() is forced
        faults.deactivate()
        assert faults.active_plan().rules.keys() == {"dist.stall"}


class TestSiteHelpers:
    def test_crash_point_is_noop_without_hit(self):
        with faults.injected("dist.crash_before_result=@2"):
            faults.crash_point("dist.crash_before_result")  # call 1: survives

    def test_stall_point_sleeps_for_value(self):
        import time

        with faults.injected("dist.stall=@1:0.05"):
            start = time.monotonic()
            faults.stall_point("dist.stall")
            assert time.monotonic() - start >= 0.04

    def test_corrupt_file_truncates_to_half(self, tmp_path):
        path = tmp_path / "victim.json"
        path.write_bytes(b"x" * 100)
        with faults.injected("dist.corrupt_result=1.0"):
            assert faults.corrupt_file("dist.corrupt_result", path)
        assert path.stat().st_size == 50

    def test_corrupt_file_without_hit_leaves_file(self, tmp_path):
        path = tmp_path / "victim.json"
        path.write_bytes(b"x" * 100)
        assert not faults.corrupt_file("dist.corrupt_result", path)
        assert path.stat().st_size == 100

    def test_obs_counters_track_fires(self):
        from repro import obs

        with obs.scoped() as reg:
            with faults.injected("serve.drop=1.0"):
                faults.check("serve.drop")
                faults.check("serve.drop")
            snap = reg.snapshot()
        counters = snap["counters"]
        assert counters["faults.injected"] == 2
        assert counters["faults.injected.serve.drop"] == 2


class TestEnvInheritance:
    def test_cli_faults_flag_exports_env(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv(faults.ENV_VAR, "sentinel-restored-later")
        main(["--faults", "dist.stall=@1", "info"])
        capsys.readouterr()
        assert os.environ[faults.ENV_VAR] == "dist.stall=@1"

    def test_cli_rejects_bad_faults_spec(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown fault site"):
            main(["--faults", "dist.explode=@1", "info"])
