"""Cross-module integration tests: the full pipeline, and the examples."""

import runpy
import sys
from pathlib import Path

import numpy as np
import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestFullPipeline:
    def test_code_to_memory_pipeline(self, spec, rng):
        """Code -> plan -> flow -> decoder -> yield -> defects -> memory."""
        from repro import (
            CrossbarMemory,
            DopingPlan,
            HalfCaveDecoder,
            ProcessFlow,
            crossbar_yield,
            make_code,
            sample_defect_map,
        )

        code = make_code("BGC", 2, 10)

        # fabrication plan is self-consistent
        plan = DopingPlan.from_code(code, spec.nanowires_per_half_cave)
        assert plan.verify()
        flow = ProcessFlow.from_plan(plan)
        assert flow.verify()

        # decoder figures agree between facade and report
        decoder = HalfCaveDecoder(code, spec.nanowires_per_half_cave)
        report = crossbar_yield(spec, code)
        assert report.cave_yield == pytest.approx(decoder.cave_yield)

        # sampled instance stores data
        memory = CrossbarMemory(sample_defect_map(spec, code, seed=0))
        payload = rng.integers(0, 2, 512).astype(bool)
        memory.write_block(0, payload)
        assert np.array_equal(memory.read_block(0, 512), payload)

    def test_top_level_api_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_public_docstrings_everywhere(self):
        """Every public module, class and function carries a docstring."""
        import importlib
        import inspect
        import pkgutil

        import repro

        for info in pkgutil.walk_packages(repro.__path__, "repro."):
            module = importlib.import_module(info.name)
            assert inspect.getdoc(module), f"{info.name} lacks a docstring"
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if getattr(obj, "__module__", None) != info.name:
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    assert inspect.getdoc(obj), f"{info.name}.{name}"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "code_comparison.py",
        "yield_optimization.py",
        "memory_simulation.py",
        "fabrication_flow.py",
        "readout_and_ecc.py",
        "end_to_end_array.py",
    ],
)
def test_examples_run_clean(script, capsys, monkeypatch):
    """Every shipped example runs to completion and prints something."""
    path = EXAMPLES_DIR / script
    assert path.exists()
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out.splitlines()) >= 3
