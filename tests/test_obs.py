"""Unit and property tests of the telemetry substrate (:mod:`repro.obs`).

Covers the span tracer (nesting, path aggregation, self time), the
metric registry (counters, gauges, histograms, providers, scoped
isolation), the sinks (in-memory, JSONL event stream, run ids) and the
profile renderer — plus hypothesis property tests that
:func:`repro.obs.merge_snapshots` is associative, mirroring the
accumulator algebra of ``test_accumulators_property.py``: integer
fields (counts, buckets) merge exactly, float accumulations up to
rounding.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import InMemorySink, JsonlSink, read_events, run_id
from repro.obs.core import Telemetry, merge_snapshots
from repro.obs.render import render_profile


@pytest.fixture()
def scoped_registry():
    """A fresh enabled registry for one test, restored afterwards."""
    with obs.scoped() as reg:
        yield reg
    assert not obs.enabled()


class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        assert not obs.enabled()
        a = obs.span("x")
        b = obs.span("y", attr=1)
        assert a is b
        with a as sp:
            sp.set(more=2)
        assert sp.wall_s == 0.0
        assert sp.cpu_s == 0.0

    def test_nested_spans_aggregate_by_path(self, scoped_registry):
        with obs.span("outer"):
            for _ in range(3):
                with obs.span("inner"):
                    pass
        snap = scoped_registry.snapshot()
        assert set(snap["spans"]) == {"outer", "outer/inner"}
        assert snap["spans"]["outer"]["count"] == 1
        assert snap["spans"]["outer/inner"]["count"] == 3

    def test_self_time_excludes_children(self, scoped_registry):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        spans = scoped_registry.snapshot()["spans"]
        outer = spans["outer"]
        assert 0.0 <= outer["self_s"] <= outer["wall_s"]
        inner_wall = spans["outer/inner"]["wall_s"]
        assert outer["self_s"] == pytest.approx(
            outer["wall_s"] - inner_wall, abs=1e-6
        )

    def test_span_wall_time_and_attrs(self, scoped_registry):
        with obs.span("timed", points=7) as sp:
            sp.set(extra="yes")
        assert sp.wall_s > 0.0
        assert sp.attrs == {"points": 7, "extra": "yes"}
        agg = scoped_registry.snapshot()["spans"]["timed"]
        assert agg["min_s"] <= agg["wall_s"] <= agg["max_s"] * agg["count"]

    def test_current_elapsed_outside_any_span_is_zero(self):
        assert obs.current_elapsed() == 0.0


class TestRegistry:
    def test_metrics_are_noops_while_disabled(self):
        assert not obs.enabled()
        before = dict(obs.current().counters)
        obs.counter("nope")
        obs.gauge("nope", 1)
        obs.observe("nope", 1.0)
        assert obs.current().counters == before
        assert obs.snapshot() is None

    def test_counters_gauges_histograms(self, scoped_registry):
        obs.counter("c", 2)
        obs.counter("c")
        obs.gauge("g", "label")
        obs.gauge("g", 4.5)
        for v in (0.5, 1.5, 0.0):
            obs.observe("h", v)
        snap = scoped_registry.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 4.5
        h = snap["hists"]["h"]
        assert h["count"] == 3
        assert h["sum"] == pytest.approx(2.0)
        assert (h["min"], h["max"]) == (0.0, 1.5)
        assert sum(h["buckets"].values()) == 3
        assert h["buckets"]["le0"] == 1

    def test_scoped_restores_previous_registry(self):
        with obs.scoped() as outer:
            obs.counter("outer.only")
            with obs.scoped() as inner:
                obs.counter("inner.only")
            assert obs.current() is outer
            assert "inner.only" in inner.counters
            assert "inner.only" not in outer.counters
            assert obs.enabled()
        assert not obs.enabled()

    def test_provider_deltas_and_absorb_no_double_count(self):
        state = {"hits": 10}
        obs.register_provider("testprov", lambda: dict(state))
        try:
            with obs.scoped() as reg:
                state["hits"] = 25
                snap = reg.snapshot()
                assert snap["counters"]["testprov.hits"] == 15
                # absorbing a worker snapshot must not re-add the live
                # provider delta on the next snapshot
                obs.absorb({"version": 1, "counters": {"testprov.hits": 7},
                            "gauges": {}, "hists": {}, "spans": {}})
                assert reg.snapshot()["counters"]["testprov.hits"] == 22
                state["hits"] = 30
                assert reg.snapshot()["counters"]["testprov.hits"] == 27
        finally:
            from repro.obs import core

            core._providers.pop("testprov", None)

    def test_finish_flushes_to_sinks_and_disables(self):
        sink = InMemorySink()
        obs.enable(sinks=[sink])
        obs.counter("done", 1)
        snap = obs.finish()
        assert not obs.enabled()
        assert snap["counters"]["done"] == 1
        assert sink.snapshots and sink.snapshots[-1]["counters"]["done"] == 1
        assert obs.finish() is None


class TestSinks:
    def test_run_id_is_content_keyed(self):
        a = run_id({"command": "sweep", "jobs": 4})
        b = run_id({"jobs": 4, "command": "sweep"})
        assert a == b and len(a) == 12
        assert run_id({"command": "memsim"}) != a

    def test_in_memory_sink_routes_events(self):
        sink = InMemorySink()
        with obs.scoped(sinks=[sink]):
            with obs.span("a"):
                pass
        assert [e["path"] for e in sink.spans] == ["a"]
        assert sink.snapshots  # scoped exit flushes a metrics snapshot

    def test_jsonl_sink_event_stream(self, tmp_path):
        path = tmp_path / "t" / "telemetry.jsonl"
        sink = JsonlSink(path, meta={"command": "unittest"})
        with obs.scoped(sinks=[sink]):
            obs.counter("c", 5)
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        events = read_events(path)
        kinds = [e["type"] for e in events]
        assert kinds == ["run", "span", "span", "metrics"]
        header = events[0]
        assert header["v"] == obs.SCHEMA_VERSION
        assert header["run"] == run_id({"command": "unittest"})
        # spans close innermost-first, with full paths
        assert [e["path"] for e in events[1:3]] == ["outer/inner", "outer"]
        assert events[-1]["snapshot"]["counters"]["c"] == 5
        # one self-contained JSON document per line
        for line in path.read_text().splitlines():
            json.loads(line)


class TestRenderer:
    def test_render_empty(self):
        assert "no telemetry" in render_profile(None)
        t = Telemetry()
        assert "no telemetry" in render_profile(t.snapshot())

    def test_render_tree_and_counters(self):
        with obs.scoped() as reg:
            with obs.span("cli.sweep"):
                with obs.span("exp.run_sweep"):
                    pass
            obs.counter("exp.points", 42)
            obs.gauge("exp.points_per_s", 7.5)
            obs.observe("sim.block_s", 0.25)
            snap = reg.snapshot()
        text = render_profile(snap)
        assert "cli.sweep" in text
        assert "exp.run_sweep" in text
        # nested span is indented under its parent
        tree_lines = [ln for ln in text.splitlines() if "exp.run_sweep" in ln]
        assert tree_lines[0].startswith("    ")
        assert "exp.points" in text and "42" in text
        assert "exp.points_per_s" in text
        assert "sim.block_s" in text

    def test_render_top_counter_overflow(self):
        with obs.scoped() as reg:
            for i in range(20):
                obs.counter(f"c{i:02d}", i + 1)
            snap = reg.snapshot()
        text = render_profile(snap, top=5)
        assert "more" in text


# -- merge_snapshots property tests --------------------------------------------

_names = st.sampled_from(["alpha", "beta", "gamma"])
_counter_ops = st.lists(
    st.tuples(_names, st.integers(min_value=-100, max_value=100)), max_size=12
)
_hist_ops = st.lists(
    st.tuples(
        _names,
        st.floats(
            min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
    ),
    max_size=12,
)
_span_ops = st.lists(
    st.tuples(
        _names,
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    ),
    max_size=8,
)


@st.composite
def snapshots(draw):
    t = Telemetry()
    for name, value in draw(_counter_ops):
        t.counter_add(name, value)
    for name, value in draw(_hist_ops):
        t.observe(name, value)
    for name, wall, cpu in draw(_span_ops):
        t.record_span(name, wall, cpu, wall, None)
    for name in draw(st.lists(_names, max_size=3)):
        t.gauge_set(name, draw(st.integers(0, 10)))
    return t.snapshot()


def assert_snapshots_close(a: dict, b: dict) -> None:
    assert set(a["counters"]) == set(b["counters"])
    for key in a["counters"]:
        assert math.isclose(
            a["counters"][key], b["counters"][key], rel_tol=1e-9, abs_tol=1e-9
        )
    assert set(a["hists"]) == set(b["hists"])
    for key in a["hists"]:
        ha, hb = a["hists"][key], b["hists"][key]
        # integer fields merge exactly
        assert ha["count"] == hb["count"]
        assert ha["buckets"] == hb["buckets"]
        assert (ha["min"], ha["max"]) == (hb["min"], hb["max"])
        assert math.isclose(ha["sum"], hb["sum"], rel_tol=1e-9, abs_tol=1e-9)
    assert set(a["spans"]) == set(b["spans"])
    for key in a["spans"]:
        sa, sb = a["spans"][key], b["spans"][key]
        assert sa["count"] == sb["count"]
        assert (sa["min_s"], sa["max_s"]) == (sb["min_s"], sb["max_s"])
        for field in ("wall_s", "cpu_s", "self_s"):
            assert math.isclose(
                sa[field], sb[field], rel_tol=1e-9, abs_tol=1e-9
            )


class TestMergeAlgebra:
    @given(snapshots(), snapshots(), snapshots())
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert_snapshots_close(left, right)

    @given(snapshots())
    @settings(max_examples=60, deadline=None)
    def test_empty_is_identity(self, snap):
        for empty in (None, {}):
            assert_snapshots_close(merge_snapshots(empty, snap), snap)
            assert_snapshots_close(merge_snapshots(snap, empty), snap)

    @given(snapshots(), snapshots())
    @settings(max_examples=60, deadline=None)
    def test_counts_merge_exactly(self, a, b):
        merged = merge_snapshots(a, b)
        for key, h in merged["hists"].items():
            expect = a["hists"].get(key, {}).get("count", 0) + b["hists"].get(
                key, {}
            ).get("count", 0)
            assert h["count"] == expect
        for key, s in merged["spans"].items():
            expect = a["spans"].get(key, {}).get("count", 0) + b["spans"].get(
                key, {}
            ).get("count", 0)
            assert s["count"] == expect
