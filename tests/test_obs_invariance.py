"""Telemetry must be numerically invisible: byte-identical results on/off.

The contract of :mod:`repro.obs` (design constraint #1): instrumentation
only reads clocks and writes telemetry state, never touching random
streams, accumulators or arrays.  These tests run every instrumented
layer — sweep pipeline (serial and worker pool), workload fleet (ideal
and electrical), MC engine, distributed shard run/merge, CLI stdout —
with telemetry enabled and disabled, and require exact equality of the
results, down to serialised bytes where a byte surface exists.
"""

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.codes.registry import make_code
from repro.crossbar.montecarlo import simulate_margin_yield
from repro.crossbar.spec import CrossbarSpec
from repro.exp import clear_caches, design_grid, run_sweep
from repro.sim.engine import MonteCarloEngine
from repro.workload import ElectricalReadout, prepare_workload


@pytest.fixture
def spec() -> CrossbarSpec:
    return CrossbarSpec()


@pytest.fixture(autouse=True)
def telemetry_off_guard():
    """Every test must leave telemetry disabled for its neighbours."""
    assert not obs.enabled()
    yield
    assert not obs.enabled()


def fleet_results_equal(a, b) -> bool:
    if a.summary != b.summary:
        return False
    if set(a.per_instance) != set(b.per_instance):
        return False
    for name in a.per_instance:
        if not np.array_equal(a.per_instance[name], b.per_instance[name]):
            return False
    for field in ("read_bits", "final_state", "margins", "margin_hist"):
        va, vb = getattr(a, field), getattr(b, field)
        if (va is None) != (vb is None):
            return False
        if va is not None and not np.array_equal(va, vb, equal_nan=True):
            return False
    return True


class TestSweepInvariance:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_sweep_csv_bytes_identical(self, spec, jobs):
        points = design_grid(axes={"sigma_t": (0.04, 0.05)})[:8]
        clear_caches()
        plain = run_sweep(points, metrics=("yield",), spec=spec, jobs=jobs)
        clear_caches()
        with obs.scoped():
            instrumented = run_sweep(
                points, metrics=("yield",), spec=spec, jobs=jobs
            )
        assert instrumented.to_csv_string() == plain.to_csv_string()
        assert instrumented.to_records() == plain.to_records()


class TestWorkloadInvariance:
    @pytest.mark.parametrize("method", ["batched", "loop"])
    def test_fleet_result_identical(self, spec, method):
        code = make_code("BGC", 2, 8)
        fleet, trace = prepare_workload(
            spec, code, accesses=300, instances=2, seed=5
        )
        kwargs = dict(
            method=method, seed=5, collect_reads=True, collect_state=True
        )
        plain = fleet.run(trace, **kwargs)
        with obs.scoped():
            instrumented = fleet.run(trace, **kwargs)
        assert fleet_results_equal(instrumented, plain)

    def test_electrical_fleet_result_identical(self, spec):
        from repro.crossbar.readout import ReadoutModel

        code = make_code("BGC", 2, 8)
        fleet, trace = prepare_workload(
            spec, code, accesses=200, instances=2, seed=7
        )
        readout = ElectricalReadout(
            model=ReadoutModel(r_on=1e4, r_off=1e7, v_read=1.0, scheme="float")
        )
        kwargs = dict(method="batched", seed=7, readout=readout)
        plain = fleet.run(trace, **kwargs)
        with obs.scoped():
            instrumented = fleet.run(trace, **kwargs)
        assert fleet_results_equal(instrumented, plain)


class TestEngineInvariance:
    def test_engine_run_identical(self, spec):
        from repro.crossbar.yield_model import decoder_for

        engine = MonteCarloEngine(
            decoder_for(spec, make_code("BGC", 2, 8)).montecarlo_kernel
        )
        plain = engine.run(10_000, 3)
        with obs.scoped():
            instrumented = engine.run(10_000, 3)
        assert instrumented == plain


class TestShardInvariance:
    def test_merged_shards_match_telemetry_off_single_host(self, spec, tmp_path):
        """Shards always collect telemetry; the merged result must still
        equal a single-host run with telemetry fully disabled."""
        from repro import dist

        code = make_code("BGC", 2, 8)
        samples, seed, k_sigma = 12_000, 0, 3.0
        single = simulate_margin_yield(
            spec, code, samples=samples, seed=seed, k_sigma=k_sigma
        )
        plan = dist.plan_mc_shards(
            "marginmc",
            "BGC",
            8,
            shards=3,
            samples=samples,
            spec=spec,
            seed=seed,
            k_sigma=k_sigma,
        )
        job = tmp_path / "job"
        dist.write_job(job, plan)
        # run half the shards with the caller's telemetry enabled, half
        # disabled — the merge must not care
        for i, shard in enumerate(plan.shards):
            shard_file = job / "shards" / shard.file_name
            if i % 2:
                with obs.scoped():
                    dist.run_shard_file(shard_file)
            else:
                dist.run_shard_file(shard_file)
        merged = dist.merge_results(job)
        assert merged == single
        # every shard shipped a telemetry snapshot and a JSONL stream
        folded = dist.job_telemetry(job)
        assert folded["counters"]["sim.trials"] == samples
        streams = sorted((job / "results").glob("*.telemetry.jsonl"))
        assert len(streams) == len(plan.shards)


class TestCliInvariance:
    def test_profile_flag_leaves_stdout_identical(self, capsys):
        args = (
            "sweep",
            "--families",
            "TC,BGC",
            "--lengths",
            "6,8",
            "--format",
            "csv",
        )
        assert main(list(args)) == 0
        plain = capsys.readouterr()
        assert main(["--profile", *args]) == 0
        profiled = capsys.readouterr()
        assert profiled.out == plain.out
        assert "span tree" in profiled.err
        assert "cli.sweep" in profiled.err
