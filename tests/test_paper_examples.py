"""End-to-end regression tests against the paper's worked Examples 1-6.

The examples use n = 3, N = 3, M = 4 with VT levels 0.1/0.3/0.5 V and
doping levels 2/4/9 x 10^18 cm^-3.  Every matrix printed in the paper is
reproduced exactly (in units of 1e18 cm^-3 via the conftest digit map).
"""

import numpy as np

from repro.decoder.variability import (
    dose_count_matrix,
    sigma_norm1,
    variability_matrix,
)
from repro.fabrication.complexity import fabrication_complexity, step_complexities
from repro.fabrication.doping import DopingPlan
from repro.fabrication.process_flow import ProcessFlow


class TestExample1:
    """P, V and D matrices of Example 1."""

    def test_final_doping_matrix(self, paper_map, example1_pattern):
        d = paper_map.apply(example1_pattern)
        expected = np.array([[2, 4, 9, 4], [2, 9, 9, 2], [4, 2, 4, 9]])
        assert np.array_equal(d, expected)

    def test_vt_matrix(self, paper_map, example1_pattern):
        """V = [[1,3,5,3],[1,5,5,1],[3,1,3,5]] * 0.1 V."""
        levels = np.asarray(paper_map.vt_levels)
        v = levels[example1_pattern]
        expected = np.array([[1, 3, 5, 3], [1, 5, 5, 1], [3, 1, 3, 5]]) * 0.1
        assert np.allclose(v, expected)


class TestExample2:
    """Step doping matrix S of Example 2."""

    def test_step_matrix(self, paper_map, example1_pattern):
        plan = DopingPlan.from_pattern(example1_pattern, paper_map)
        expected = np.array([[0, -5, 0, 2], [-2, 7, 5, -7], [4, 2, 4, 9]])
        assert np.allclose(plan.steps, expected)

    def test_proposition2_property(self, paper_map, example1_pattern):
        plan = DopingPlan.from_pattern(example1_pattern, paper_map)
        assert plan.verify()


class TestExample3:
    """Fabrication complexity: phi = (2, 4, 3), Phi = 9."""

    def test_phi_values(self, paper_map, example1_pattern):
        plan = DopingPlan.from_pattern(example1_pattern, paper_map)
        assert step_complexities(plan.steps).tolist() == [2, 4, 3]
        assert fabrication_complexity(plan.steps) == 9


class TestExample4:
    """Variability matrix Sigma = [[2,3,2,3],[2,2,2,2],[1,1,1,1]] sigma_T^2."""

    def test_sigma_matrix(self, paper_map, example1_pattern):
        plan = DopingPlan.from_pattern(example1_pattern, paper_map)
        sigma = variability_matrix(dose_count_matrix(plan.steps), sigma_t=1.0)
        expected = np.array([[2, 3, 2, 3], [2, 2, 2, 2], [1, 1, 1, 1]])
        assert np.array_equal(sigma, expected)

    def test_sigma_norm_is_22(self, paper_map, example1_pattern):
        plan = DopingPlan.from_pattern(example1_pattern, paper_map)
        sigma = variability_matrix(dose_count_matrix(plan.steps), sigma_t=1.0)
        assert sigma_norm1(sigma) == 22.0


class TestExample5:
    """Gray-ordered pattern: S and Sigma as printed, ||Sigma||_1 = 18."""

    def test_step_matrix(self, paper_map, example5_pattern):
        plan = DopingPlan.from_pattern(example5_pattern, paper_map)
        expected = np.array([[0, -5, 0, 2], [-2, 0, 5, 0], [4, 9, 4, 2]])
        assert np.allclose(plan.steps, expected)

    def test_sigma_matrix(self, paper_map, example5_pattern):
        plan = DopingPlan.from_pattern(example5_pattern, paper_map)
        sigma = variability_matrix(dose_count_matrix(plan.steps), sigma_t=1.0)
        expected = np.array([[2, 2, 2, 2], [2, 1, 2, 1], [1, 1, 1, 1]])
        assert np.array_equal(sigma, expected)
        assert sigma_norm1(sigma) == 18.0


class TestExample6:
    """Gray code reduces Phi from 9 to 7 with phi = (2, 2, 3)."""

    def test_phi_values(self, paper_map, example5_pattern):
        plan = DopingPlan.from_pattern(example5_pattern, paper_map)
        assert step_complexities(plan.steps).tolist() == [2, 2, 3]
        assert fabrication_complexity(plan.steps) == 7


class TestExamplesThroughProcessFlow:
    """The worked examples replayed as explicit fabrication events."""

    def test_example1_flow(self, paper_map, example1_pattern):
        plan = DopingPlan.from_pattern(example1_pattern, paper_map)
        flow = ProcessFlow.from_plan(plan)
        assert flow.doping_event_count == 9  # Phi of Example 3
        assert flow.verify()

    def test_example5_flow(self, paper_map, example5_pattern):
        plan = DopingPlan.from_pattern(example5_pattern, paper_map)
        flow = ProcessFlow.from_plan(plan)
        assert flow.doping_event_count == 7  # Phi of Example 6
        assert flow.verify()

    def test_example_reflected_words(self):
        """Example 5's rows are reflected forms of the ternary words 01,02,12."""
        from repro.codes.reflect import unreflect_word

        rows = [(0, 1, 2, 1), (0, 2, 2, 0), (1, 2, 1, 0)]
        assert [unreflect_word(r, 3) for r in rows] == [(0, 1), (0, 2), (1, 2)]
