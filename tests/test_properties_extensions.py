"""Property-based tests (hypothesis) for the extension modules.

Covers the exact-optimality identities, the stochastic baselines, the
read-out solver's physical invariants and the address-map bijection.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import TreeCode
from repro.codes.optimal import sigma_cost_of_order
from repro.crossbar.readout import ReadoutModel
from repro.decoder.stochastic import (
    expected_addressable_fraction,
    random_contact_addressable_fraction,
    signature_collision_probability,
)
from repro.decoder.variability import code_variability, sigma_norm1


# -- sigma-cost identity on random arrangements --------------------------------


@st.composite
def space_and_order(draw):
    n = draw(st.integers(2, 3))
    m = draw(st.integers(1, 3))
    space = TreeCode(n, m)
    order = draw(st.permutations(list(range(space.size))))
    return space, list(order)


@given(space_and_order())
@settings(max_examples=30, deadline=None)
def test_sigma_identity_holds_for_any_arrangement(data):
    """The closed-form ||nu||_1 equals the matrix pipeline, always."""
    space, order = data
    identity = sigma_cost_of_order(space, order)
    reordered = space.rearranged(order)
    matrices = sigma_norm1(code_variability(reordered, space.size, sigma_t=1.0))
    assert identity == matrices


@given(space_and_order())
@settings(max_examples=30, deadline=None)
def test_sigma_cost_bounded_below_by_gray_bound(data):
    from repro.codes.optimal import gray_sigma_lower_bound

    space, order = data
    assert sigma_cost_of_order(space, order) >= gray_sigma_lower_bound(space)


# -- stochastic baselines -------------------------------------------------------


@given(st.integers(1, 50), st.integers(1, 5000))
def test_random_code_fraction_is_probability(group, omega):
    frac = expected_addressable_fraction(group, omega)
    assert 0.0 <= frac <= 1.0


@given(st.integers(2, 50), st.integers(2, 5000))
def test_random_code_fraction_monotone_in_omega(group, omega):
    assert expected_addressable_fraction(group, omega + 1) >= (
        expected_addressable_fraction(group, omega)
    )


@given(st.integers(1, 24), st.floats(0.0, 1.0))
def test_collision_probability_is_probability(mesowires, p):
    c = signature_collision_probability(mesowires, p)
    assert 0.0 <= c <= 1.0


@given(st.integers(1, 24))
def test_fair_connections_minimise_collisions(mesowires):
    fair = signature_collision_probability(mesowires, 0.5)
    for p in (0.1, 0.3, 0.7, 0.9):
        assert fair <= signature_collision_probability(mesowires, p) + 1e-12


@given(st.integers(1, 30), st.integers(1, 16))
def test_random_contact_fraction_is_probability(group, mesowires):
    frac = random_contact_addressable_fraction(group, mesowires)
    assert 0.0 <= frac <= 1.0


# -- read-out physics ------------------------------------------------------------


@st.composite
def small_state_maps(draw):
    rows = draw(st.integers(1, 5))
    cols = draw(st.integers(1, 5))
    bits = draw(st.lists(st.booleans(), min_size=rows * cols, max_size=rows * cols))
    return np.array(bits).reshape(rows, cols)


@given(small_state_maps())
@settings(max_examples=30, deadline=None)
def test_read_current_positive(states):
    model = ReadoutModel()
    current = model.read_current(states, 0, 0)
    assert current > 0


@given(small_state_maps())
@settings(max_examples=30, deadline=None)
def test_on_cell_reads_at_least_off_cell(states):
    """Flipping the selected cell ON never lowers the sensed current."""
    model = ReadoutModel()
    on = states.copy()
    on[0, 0] = True
    off = states.copy()
    off[0, 0] = False
    assert model.read_current(on, 0, 0) >= model.read_current(off, 0, 0)


@given(small_state_maps())
@settings(max_examples=20, deadline=None)
def test_grounding_never_reads_lower_than_isolated_cell(states):
    """With unselected lines grounded, the sensed current equals the
    selected cell's Ohm's-law current (no sneak additions/subtractions)."""
    model = ReadoutModel(scheme="ground")
    g = 1.0 / model.r_on if states[0, 0] else 1.0 / model.r_off
    assert model.read_current(states, 0, 0) == pytest.approx(model.v_read * g, rel=1e-6)


# -- address map ------------------------------------------------------------------


@given(st.sampled_from(["TC", "GC", "BGC", "HC", "AHC"]), st.integers(10, 30))
@settings(max_examples=12, deadline=None)
def test_address_map_bijective_over_families_and_sizes(family, nanowires):
    from repro.analysis.sweeps import spec_with
    from repro.codes.registry import make_code
    from repro.decoder.addressmap import AddressMap

    length = 8 if family in ("TC", "GC", "BGC") else 6
    spec = spec_with(nanowires=nanowires)
    amap = AddressMap(spec, make_code(family, 2, length))
    # spot-check the round trip on a sample of wires
    for wire in range(0, amap.wire_count, max(1, amap.wire_count // 50)):
        assert amap.wire_of(amap.address_of(wire)) == wire
