"""Property-based tests (hypothesis) across the fabrication/decoder stack.

These exercise the paper's structural invariants on *arbitrary* pattern
matrices, not just code-derived ones — the strongest form of the
Prop. 2 / Def. 4 / Def. 5 relationships.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.decoder.variability import dose_count_matrix, variability_matrix
from repro.fabrication.complexity import step_complexities
from repro.fabrication.doping import (
    DopingPlan,
    accumulate_doses,
    default_digit_map,
)


@st.composite
def pattern_matrices(draw):
    n = draw(st.integers(2, 4))
    rows = draw(st.integers(1, 12))
    cols = draw(st.integers(1, 8))
    p = draw(arrays(dtype=np.int64, shape=(rows, cols), elements=st.integers(0, n - 1)))
    return p, n


@given(pattern_matrices())
@settings(max_examples=40, deadline=None)
def test_prop2_suffix_sum_roundtrip(data):
    """D -> S -> D is the identity for any pattern matrix."""
    p, n = data
    plan = DopingPlan.from_pattern(p, default_digit_map(n))
    assert np.allclose(accumulate_doses(plan.steps), plan.final)


@given(pattern_matrices())
@settings(max_examples=40, deadline=None)
def test_nu_last_row_all_ones(data):
    """The last-defined nanowire receives exactly one dose per region."""
    p, n = data
    plan = DopingPlan.from_pattern(p, default_digit_map(n))
    nu = dose_count_matrix(plan.steps)
    assert (nu[-1] == 1).all()


@given(pattern_matrices())
@settings(max_examples=40, deadline=None)
def test_nu_monotone_and_bounded(data):
    """nu decreases (weakly) with wire index and is bounded by N - i."""
    p, n = data
    plan = DopingPlan.from_pattern(p, default_digit_map(n))
    nu = dose_count_matrix(plan.steps)
    rows = p.shape[0]
    assert (np.diff(nu, axis=0) <= 0).all()
    for i in range(rows):
        assert (nu[i] >= 1).all()
        assert (nu[i] <= rows - i).all()


@given(pattern_matrices())
@settings(max_examples=40, deadline=None)
def test_nu_counts_pattern_transitions(data):
    """nu[i,j] = 1 + transitions of digit j below row i (Prop. 4 proof)."""
    p, n = data
    plan = DopingPlan.from_pattern(p, default_digit_map(n))
    nu = dose_count_matrix(plan.steps)
    rows, cols = p.shape
    for j in range(cols):
        transitions = 0
        for i in range(rows - 2, -1, -1):
            if p[i, j] != p[i + 1, j]:
                transitions += 1
            assert nu[i, j] == 1 + transitions


@given(pattern_matrices())
@settings(max_examples=40, deadline=None)
def test_phi_bounded_by_distinct_levels(data):
    """phi_i can never exceed the number of distinct possible doses."""
    p, n = data
    plan = DopingPlan.from_pattern(p, default_digit_map(n))
    phi = step_complexities(plan.steps)
    max_doses = n * n  # level-pair differences incl. initial doping
    assert (phi >= 0).all()
    assert (phi <= min(p.shape[1], max_doses)).all()


@given(pattern_matrices(), st.floats(0.01, 0.2))
@settings(max_examples=30, deadline=None)
def test_sigma_scales_quadratically(data, sigma_t):
    p, n = data
    plan = DopingPlan.from_pattern(p, default_digit_map(n))
    nu = dose_count_matrix(plan.steps)
    sigma = variability_matrix(nu, sigma_t)
    assert np.allclose(sigma, sigma_t**2 * nu)


@given(st.integers(2, 3), st.integers(1, 3), st.integers(1, 25))
@settings(max_examples=30, deadline=None)
def test_identical_adjacent_rows_add_no_variance(n, m, rows):
    """A wire repeating its predecessor's pattern adds zero new doses...

    ...to the predecessor (the S row is all zero), which is the
    mechanism behind Gray-code optimality.
    """
    word = tuple((i * 7) % n for i in range(m))
    p = np.array([word] * max(2, rows))
    plan = DopingPlan.from_pattern(p, default_digit_map(n))
    s = plan.steps
    assert np.allclose(s[:-1], 0.0)
    nu = dose_count_matrix(s)
    assert (nu == 1).all()
