"""Unit tests for wire resistance and the distributed read-out solver."""

import numpy as np
import pytest

from repro.crossbar.readout import ReadoutError, ReadoutModel
from repro.crossbar.readout_distributed import DistributedReadout
from repro.device.resistance import (
    NanowireGeometry,
    ResistanceError,
    carrier_mobility,
    resistivity_ohm_cm,
    segment_resistance_ohm,
    wire_resistance_ohm,
)


class TestResistivity:
    def test_mobility_decreases_with_doping(self):
        mobilities = [carrier_mobility(n) for n in (1e16, 1e18, 1e20)]
        assert mobilities[0] > mobilities[1] > mobilities[2]

    def test_resistivity_decreases_with_doping(self):
        rhos = [resistivity_ohm_cm(n) for n in (1e17, 1e18, 1e19)]
        assert rhos[0] > rhos[1] > rhos[2]

    def test_poly_more_resistive_than_crystal(self):
        assert resistivity_ohm_cm(1e18, poly=True) > resistivity_ohm_cm(
            1e18, poly=False
        )

    def test_textbook_magnitude(self):
        """Single-crystal Si at 1e18 cm^-3 p-type: ~0.05 ohm cm."""
        rho = resistivity_ohm_cm(1e18, poly=False)
        assert 0.02 < rho < 0.2

    def test_rejects_bad_doping(self):
        with pytest.raises(ResistanceError):
            carrier_mobility(0)


class TestWireResistance:
    def test_paper_geometry_is_resistive(self):
        """6 nm x 300 nm x 10 um poly wire at decoder dopings: the wire
        itself is tens of kilo-ohms — not negligible vs R_on."""
        geometry = NanowireGeometry()
        r = wire_resistance_ohm(geometry, 5e18)
        assert 1e4 < r < 1e7

    def test_scaling_with_length(self):
        short = wire_resistance_ohm(NanowireGeometry(length_um=5), 1e18)
        long = wire_resistance_ohm(NanowireGeometry(length_um=20), 1e18)
        assert long == pytest.approx(4 * short)

    def test_segment_resistance_division(self):
        geometry = NanowireGeometry()
        total = wire_resistance_ohm(geometry, 1e18)
        per_cell = segment_resistance_ohm(geometry, 1e18, 40)
        assert per_cell == pytest.approx(total / 40)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ResistanceError):
            NanowireGeometry(width_nm=0)
        with pytest.raises(ResistanceError):
            segment_resistance_ohm(NanowireGeometry(), 1e18, 0)


class TestDistributedReadout:
    def test_zero_resistance_limit_matches_ideal(self):
        """With ideal lines the distributed solver reproduces the
        single-node solver."""
        ideal = ReadoutModel()
        dist = DistributedReadout(base=ideal, row_segment_ohm=0.0, col_segment_ohm=0.0)
        states = np.zeros((6, 6), dtype=bool)
        states[2, 3] = True
        a = ideal.read_current(states, 2, 3)
        b = dist.read_current(states, 2, 3)
        assert b == pytest.approx(a, rel=1e-3)

    def test_line_resistance_lowers_current(self):
        states = np.ones((8, 8), dtype=bool)
        ideal = DistributedReadout(row_segment_ohm=0.0, col_segment_ohm=0.0)
        lossy = DistributedReadout(row_segment_ohm=500.0, col_segment_ohm=500.0)
        assert lossy.read_current(states, 7, 7) < ideal.read_current(states, 7, 7)

    def test_ir_drop_gradient_along_diagonal(self):
        """Far-corner cells read lower — the position dependence the
        ideal solver cannot express."""
        dist = DistributedReadout(row_segment_ohm=500.0, col_segment_ohm=500.0)
        sweep = dist.position_sweep(10)
        currents = [i for _, i in sweep]
        assert currents[0] > currents[-1]

    def test_position_independent_when_ideal(self):
        dist = DistributedReadout(row_segment_ohm=0.0, col_segment_ohm=0.0)
        sweep = dist.position_sweep(8)
        currents = [i for _, i in sweep]
        assert max(currents) - min(currents) < 1e-3 * max(currents)

    def test_worst_case_margin_below_ideal(self):
        ideal = ReadoutModel()
        lossy = DistributedReadout(row_segment_ohm=300.0, col_segment_ohm=300.0)
        assert lossy.worst_case_margin(8) < ideal.sense_margin(8, 8) + 1e-9

    def test_margin_positive_for_cave_banks(self):
        from repro.device.resistance import NanowireGeometry

        seg = segment_resistance_ohm(NanowireGeometry(), 5e18, 20)
        dist = DistributedReadout(row_segment_ohm=seg, col_segment_ohm=seg)
        assert dist.worst_case_margin(20) > 0

    def test_rejects_negative_segments(self):
        with pytest.raises(ReadoutError):
            DistributedReadout(row_segment_ohm=-1.0)

    def test_selection_bounds(self):
        dist = DistributedReadout()
        with pytest.raises(ReadoutError):
            dist.read_current(np.ones((3, 3), bool), 5, 0)
