"""Integration tests for the repro serve daemon, protocol and client."""

import threading
import uuid

import pytest

from repro import api
from repro.exp.designpoint import DesignPoint
from repro.serve import ReproServer, ServeClient, ServeError
from repro.serve.protocol import (
    decode_frame,
    encode_frame,
    iter_record_chunks,
    request_frame,
)
from repro.store import ResultStore


@pytest.fixture
def socket_path(tmp_path):
    # unix socket paths are limited to ~108 bytes; keep the name short
    path = tmp_path / f"s{uuid.uuid4().hex[:6]}.sock"
    if len(str(path)) > 100:
        path = f"/tmp/repro-{uuid.uuid4().hex[:8]}.sock"
    return str(path)


def sweep_request(*families, length=6):
    points = tuple(DesignPoint.make(f, length) for f in families or ("TC", "GC"))
    return api.SweepRequest(points=points, metrics=("yield", "area"))


class TestProtocol:
    def test_frame_round_trip(self):
        frame = request_frame("evaluate", 3, {"kind": "sweep"}, jobs=2)
        assert decode_frame(encode_frame(frame)) == frame

    def test_none_knobs_dropped(self):
        frame = request_frame("simulate", 1, {}, method="loop", chunk_size=None)
        assert "chunk_size" not in frame and frame["method"] == "loop"

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown op"):
            request_frame("bogus", 1)

    def test_non_object_frame_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            decode_frame(b"[1,2,3]\n")

    def test_record_chunking(self):
        records = [{"i": i} for i in range(5)]
        chunks = list(iter_record_chunks(records, 2))
        assert [len(c) for c in chunks] == [2, 2, 1]
        assert list(iter_record_chunks([], 2)) == [[]]


class TestDaemon:
    def test_ping_stats_shutdown(self, socket_path):
        server = ReproServer(socket_path)
        with server.running():
            with ServeClient(socket_path) as client:
                assert client.ping()
                stats = client.stats()
                assert stats["server"]["requests"] >= 1
                assert "store" not in stats  # no store configured
                client.shutdown()

    def test_evaluate_matches_direct(self, socket_path):
        req = sweep_request()
        direct = api.evaluate(req)
        with ReproServer(socket_path).running():
            with ServeClient(socket_path) as client:
                served = client.evaluate(req)
                assert client.last_cached is False
        assert served == direct
        assert served.fields == direct.fields

    def test_warm_request_served_from_store(self, socket_path, tmp_path):
        req = sweep_request()
        store = ResultStore(tmp_path / "store")
        with ReproServer(socket_path, store=store).running():
            with ServeClient(socket_path) as client:
                cold = client.evaluate(req)
                assert client.last_cached is False
                warm = client.evaluate(req)
                assert client.last_cached is True
                stats = client.stats()
        assert warm == cold
        assert stats["server"]["store_hits"] >= 1
        assert stats["store"]["hits"] >= 1

    def test_store_shared_between_daemon_and_direct_path(self, socket_path, tmp_path):
        req = sweep_request()
        store = ResultStore(tmp_path / "store")
        direct = api.evaluate(req, store=store)  # populate before the daemon
        with ReproServer(socket_path, store=store).running():
            with ServeClient(socket_path) as client:
                served = client.evaluate(req)
                assert client.last_cached is True
        assert served == direct

    def test_simulate_and_memsim_match_direct(self, socket_path):
        mc = api.McRequest(kind="marginmc", family="TC", total_length=6, samples=32)
        wl = api.WorkloadRequest(family="TC", total_length=6, accesses=128, instances=2)
        with ReproServer(socket_path).running():
            with ServeClient(socket_path) as client:
                assert client.simulate(mc) == api.simulate(mc)
                assert client.memsim(wl) == api.memsim(wl)

    def test_cavemc_loop_not_reported_cached(self, socket_path, tmp_path):
        req = api.McRequest(kind="cavemc", family="TC", total_length=6, samples=32)
        store = ResultStore(tmp_path / "store")
        with ReproServer(socket_path, store=store).running():
            with ServeClient(socket_path) as client:
                batched = client.simulate(req)  # commits the batched estimate
                loop = client.simulate(req, method="loop")
                assert client.last_cached is False  # loop bypasses the store
        assert loop == api.simulate(req, method="loop")
        assert batched == api.simulate(req)

    def test_error_frame_for_bad_request(self, socket_path):
        with ReproServer(socket_path).running():
            with ServeClient(socket_path) as client:
                with pytest.raises(ServeError, match="unexpected request kind"):
                    client._roundtrip("evaluate", {"v": 1, "kind": "bogus"})
                assert client.ping()  # connection survives the error

    def test_identical_inflight_requests_coalesce(self, socket_path):
        req = sweep_request("TC", "GC", "BGC", length=8)
        server = ReproServer(socket_path, batch_window_s=0.05)
        results, errors = [], []

        def worker():
            try:
                with ServeClient(socket_path) as client:
                    results.append(client.evaluate(req))
            except Exception as exc:  # noqa: BLE001 — surfaced via the assert
                errors.append(exc)

        with server.running():
            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        assert not errors
        assert len(results) == 4
        direct = api.evaluate(req)
        assert all(r == direct for r in results)
        assert server.counters["coalesced"] >= 1
        assert server.counters["computed"] + server.counters["coalesced"] >= 4

    def test_compatible_sweeps_batch_into_one_group(self, socket_path):
        # same spec/metrics/params, different point grids -> one engine call
        first = sweep_request("TC")
        second = sweep_request("GC")
        server = ReproServer(socket_path, batch_window_s=0.1)
        results = {}

        def worker(name, req):
            with ServeClient(socket_path) as client:
                results[name] = client.evaluate(req)

        with server.running():
            threads = [
                threading.Thread(target=worker, args=("tc", first)),
                threading.Thread(target=worker, args=("gc", second)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        assert results["tc"] == api.evaluate(first)
        assert results["gc"] == api.evaluate(second)
        if server.counters["batch_groups"] == 1:  # both landed in the window
            assert server.counters["batched_requests"] == 2

    def test_clean_shutdown_removes_socket(self, socket_path, tmp_path):
        import os

        server = ReproServer(socket_path)
        with server.running():
            with ServeClient(socket_path) as client:
                client.ping()
        assert not os.path.exists(socket_path)

    def test_stale_socket_file_replaced_on_start(self, socket_path):
        from pathlib import Path

        Path(socket_path).touch()  # debris from a killed daemon
        with ReproServer(socket_path).running():
            with ServeClient(socket_path) as client:
                assert client.ping()
