"""Equivalence/property suite for the batched Monte-Carlo engine.

The engine's contract, tested here:

* batched and legacy per-trial loops produce **identical** results for
  the same seed wherever they consume the random stream identically
  (stochastic baselines, batch-of-1 wrappers, region-VT draws);
* where the stream layouts differ by design (the spawned block streams
  of the cave-yield kernel), batched and loop agree **statistically**
  — within a few standard errors — and both agree with the analytic
  yield model;
* results never depend on ``max_trials_per_chunk``;
* trial budgets and chunk bounds are validated consistently.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import make_code
from repro.crossbar.montecarlo import (
    MonteCarloYield,
    sample_electrical_mask,
    sample_geometric_mask,
    simulate_cave_yield,
)
from repro.crossbar.yield_model import crossbar_yield, decoder_for
from repro.decoder.addressing import sampled_addressable_mask
from repro.decoder.stochastic import (
    StochasticError,
    simulate_random_codes,
    simulate_random_contacts,
)
from repro.device.variability import sample_region_vt
from repro.sim import (
    Chunk,
    MonteCarloEngine,
    RandomCodesKernel,
    RandomContactsKernel,
    StreamingMoments,
    plan_chunks,
    simulate_cave_yield_batched,
)
from repro.sim.batch import block_sizes

COMMON = settings(max_examples=25, deadline=None)


# -- accumulators --------------------------------------------------------------


class TestStreamingMoments:
    @COMMON
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        n_splits=st.integers(min_value=0, max_value=5),
        data=st.data(),
    )
    def test_matches_numpy_for_any_chunking(self, values, n_splits, data):
        arr = np.array(values)
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(0, arr.size), min_size=n_splits, max_size=n_splits
                )
            )
        )
        acc = StreamingMoments()
        for part in np.split(arr, cuts):
            acc.update(part)
        assert acc.count == arr.size
        assert acc.mean == pytest.approx(arr.mean(), rel=1e-9, abs=1e-9)
        expected_std = arr.std(ddof=1) if arr.size > 1 else 0.0
        assert acc.std == pytest.approx(expected_std, rel=1e-7, abs=1e-7)

    def test_merge_equals_joint_update(self, rng):
        a, b = rng.normal(size=40), rng.normal(size=17)
        left, right, joint = (
            StreamingMoments(),
            StreamingMoments(),
            StreamingMoments(),
        )
        left.update(a)
        right.update(b)
        joint.update(np.concatenate([a, b]))
        left.merge(right)
        assert left.count == joint.count
        assert left.mean == pytest.approx(joint.mean, rel=1e-12)
        assert left.std == pytest.approx(joint.std, rel=1e-9)

    def test_single_value_has_zero_spread(self):
        acc = StreamingMoments()
        acc.update(np.array([0.25]))
        assert acc.mean == 0.25
        assert acc.std == 0.0
        assert acc.stderr == 0.0

    def test_empty_update_is_noop(self):
        acc = StreamingMoments()
        acc.update(np.array([]))
        assert acc.count == 0


# -- chunk planning ------------------------------------------------------------


class TestPlanChunks:
    @COMMON
    @given(
        samples=st.integers(min_value=1, max_value=50_000),
        chunk=st.integers(min_value=1, max_value=20_000),
        block=st.integers(min_value=1, max_value=5_000),
    )
    def test_plan_covers_every_trial_exactly_once(self, samples, chunk, block):
        chunks = plan_chunks(samples, chunk, block)
        assert chunks[0].start == 0
        assert chunks[-1].stop == samples
        for prev, nxt in zip(chunks, chunks[1:]):
            assert prev.stop == nxt.start
        per_chunk = max((chunk // block) * block, block)
        assert all(c.trials == per_chunk for c in chunks[:-1])
        assert 0 < chunks[-1].trials <= per_chunk
        for c in chunks:
            widths = block_sizes(c, block)
            assert sum(widths) == c.trials
            assert all(w <= block for w in widths)

    def test_chunk_boundaries_align_with_stream_blocks(self):
        chunks = plan_chunks(10_000, 1000, 300)
        # 1000 trials rounds down to 3 whole blocks of 300
        assert chunks[0] == Chunk(start=0, trials=900)
        assert all(c.start % 300 == 0 for c in chunks)

    def test_rejects_bad_budgets(self):
        with pytest.raises(ValueError):
            plan_chunks(0, 100)
        with pytest.raises(ValueError):
            plan_chunks(100, 0)
        with pytest.raises(ValueError):
            plan_chunks(100, 100, 0)


# -- stochastic baselines: exact stream equivalence ----------------------------


class TestRandomCodesEquivalence:
    @COMMON
    @given(
        group=st.integers(min_value=1, max_value=40),
        space=st.integers(min_value=1, max_value=500),
        samples=st.integers(min_value=1, max_value=300),
        chunk=st.integers(min_value=1, max_value=1000),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_batched_equals_loop_per_trial(self, group, space, samples, chunk, seed):
        """Exact equivalence: the streams match draw-for-draw."""
        engine = MonteCarloEngine(
            RandomCodesKernel(group, space), max_trials_per_chunk=chunk
        )
        result = engine.run(samples, np.random.default_rng(seed), collect=True)
        rng = np.random.default_rng(seed)
        loop = np.empty(samples)
        for t in range(samples):
            codes = rng.integers(0, space, size=group)
            _, counts = np.unique(codes, return_counts=True)
            loop[t] = counts[counts == 1].sum() / group
        assert np.array_equal(result.raw["unique_fraction"], loop)

    @COMMON
    @given(
        chunk_a=st.integers(min_value=1, max_value=400),
        chunk_b=st.integers(min_value=1, max_value=400),
    )
    def test_chunk_size_never_changes_results(self, chunk_a, chunk_b):
        a = simulate_random_codes(
            12, 30, 257, np.random.default_rng(8), max_trials_per_chunk=chunk_a
        )
        b = simulate_random_codes(
            12, 30, 257, np.random.default_rng(8), max_trials_per_chunk=chunk_b
        )
        assert a == b

    def test_public_methods_agree(self):
        loop = simulate_random_codes(
            20, 64, 500, np.random.default_rng(4), method="loop"
        )
        batched = simulate_random_codes(20, 64, 500, np.random.default_rng(4))
        assert batched == pytest.approx(loop, rel=1e-12)


class TestRandomContactsEquivalence:
    @COMMON
    @given(
        group=st.integers(min_value=1, max_value=30),
        mesowires=st.integers(min_value=1, max_value=60),
        samples=st.integers(min_value=1, max_value=150),
        chunk=st.integers(min_value=1, max_value=500),
        p=st.sampled_from([0.3, 0.5, 0.9]),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_batched_equals_loop_per_trial(
        self, group, mesowires, samples, chunk, p, seed
    ):
        engine = MonteCarloEngine(
            RandomContactsKernel(group, mesowires, p), max_trials_per_chunk=chunk
        )
        result = engine.run(samples, np.random.default_rng(seed), collect=True)
        rng = np.random.default_rng(seed)
        loop = np.empty(samples)
        for t in range(samples):
            sig = rng.random((group, mesowires)) < p
            _, inverse, counts = np.unique(
                sig, axis=0, return_inverse=True, return_counts=True
            )
            loop[t] = (counts[inverse] == 1).sum() / group
        assert np.array_equal(result.raw["unique_fraction"], loop)

    def test_multiword_signatures_use_exact_fallback(self):
        """> 52 mesowires exceed one float64 word; results stay exact."""
        loop = simulate_random_contacts(
            6, 60, 100, np.random.default_rng(2), method="loop"
        )
        batched = simulate_random_contacts(6, 60, 100, np.random.default_rng(2))
        assert batched == pytest.approx(loop, rel=1e-12)


# -- cave yield: batch-of-1 exactness, chunk invariance, statistics ------------


class TestCaveYieldWrappers:
    def test_electrical_wrapper_is_batch_of_one(self, spec):
        decoder = decoder_for(spec, make_code("BGC", 2, 8))
        scalar = sample_electrical_mask(decoder, np.random.default_rng(6))
        batch = sample_electrical_mask(decoder, np.random.default_rng(6), trials=1)
        assert scalar.shape == (decoder.nanowires,)
        assert batch.shape == (1, decoder.nanowires)
        assert np.array_equal(scalar, batch[0])

    def test_electrical_wrapper_matches_seed_implementation(self, spec):
        """Same draws, same mask as the pre-engine classify-based path."""
        decoder = decoder_for(spec, make_code("TC", 2, 8))
        new = sample_electrical_mask(decoder, np.random.default_rng(123))
        rng = np.random.default_rng(123)
        vt = sample_region_vt(
            decoder.plan.nominal_vt(), decoder.nu, rng, decoder.sigma_t
        )
        seed_mask = sampled_addressable_mask(vt, decoder.patterns, decoder.scheme)
        assert np.array_equal(new, seed_mask)

    def test_geometric_wrapper_is_batch_of_one(self, spec):
        decoder = decoder_for(spec, make_code("TC", 2, 6))  # 3 groups
        scalar = sample_geometric_mask(decoder, np.random.default_rng(6))
        batch = sample_geometric_mask(decoder, np.random.default_rng(6), trials=1)
        assert np.array_equal(scalar, batch[0])

    def test_batched_masks_equal_sequential_masks(self, spec):
        """A (trials, N) batch consumes the stream like repeated calls."""
        decoder = decoder_for(spec, make_code("TC", 2, 6))
        batch = sample_geometric_mask(decoder, np.random.default_rng(9), trials=7)
        rng = np.random.default_rng(9)
        stacked = np.stack([sample_geometric_mask(decoder, rng) for _ in range(7)])
        assert np.array_equal(batch, stacked)

    def test_region_vt_trial_axis(self, binary_scheme, rng):
        nominal = np.full((4, 3), 0.25)
        nu = np.ones((4, 3))
        single = sample_region_vt(nominal, nu, np.random.default_rng(1))
        batch1 = sample_region_vt(nominal, nu, np.random.default_rng(1), trials=1)
        assert np.array_equal(single, batch1[0])
        many = sample_region_vt(nominal, nu, rng, trials=5)
        assert many.shape == (5, 4, 3)
        with pytest.raises(ValueError):
            sample_region_vt(nominal, nu, rng, trials=0)

    def test_addressable_mask_broadcasts_over_trials(self, binary_scheme, rng):
        patterns = np.array([[0, 1], [1, 0], [1, 1]])
        vt = sample_region_vt(
            np.asarray(binary_scheme.levels)[patterns],
            np.ones_like(patterns),
            rng,
            sigma_t=0.2,
            trials=50,
        )
        batched = sampled_addressable_mask(vt, patterns, binary_scheme)
        assert batched.shape == (50, 3)
        stacked = np.stack(
            [
                sampled_addressable_mask(vt[t], patterns, binary_scheme)
                for t in range(50)
            ]
        )
        assert np.array_equal(batched, stacked)


class TestCaveYieldEngine:
    @pytest.mark.parametrize("chunk", [1, 999, 4096, 10**6])
    def test_chunk_size_never_changes_results(self, spec, chunk):
        code = make_code("BGC", 2, 8)
        baseline = simulate_cave_yield(spec, code, samples=3000, seed=7)
        other = simulate_cave_yield(
            spec, code, samples=3000, seed=7, max_trials_per_chunk=chunk
        )
        assert other == baseline

    def test_deterministic_for_a_seed(self, spec):
        code = make_code("TC", 2, 8)
        a = simulate_cave_yield_batched(spec, code, samples=500, seed=3)
        b = simulate_cave_yield_batched(spec, code, samples=500, seed=3)
        assert a == b

    def test_statistical_agreement_loop_vs_batched_vs_analytic(self, spec):
        """Streams differ by design; estimates agree within stderr."""
        for family, length in [("TC", 8), ("BGC", 10), ("HC", 6)]:
            code = make_code(family, 2, length)
            batched = simulate_cave_yield(spec, code, samples=4000, seed=17)
            loop = simulate_cave_yield(spec, code, samples=1000, seed=17, method="loop")
            analytic = crossbar_yield(spec, code).cave_yield
            tol = 4 * (batched.stderr + loop.stderr)
            assert batched.mean_cave_yield == pytest.approx(
                loop.mean_cave_yield, abs=max(0.02, tol)
            )
            assert batched.mean_cave_yield == pytest.approx(
                analytic, abs=max(0.02, 5 * batched.stderr)
            )

    def test_loop_method_matches_pre_engine_simulator(self, spec):
        """The loop path still draws exactly like the seed implementation."""
        code = make_code("BGC", 2, 8)
        mc = simulate_cave_yield(spec, code, samples=200, seed=3, method="loop")
        decoder = decoder_for(spec, code)
        rng = np.random.default_rng(3)
        cave = np.empty(200)
        for s in range(200):
            nominal = decoder.plan.nominal_vt()
            vt = sample_region_vt(nominal, decoder.nu, rng, decoder.sigma_t)
            e_mask = sampled_addressable_mask(vt, decoder.patterns, decoder.scheme)
            g_mask = sample_geometric_mask(decoder, rng)
            cave[s] = (e_mask & g_mask).mean()
        assert mc.mean_cave_yield == pytest.approx(cave.mean(), rel=1e-12)

    def test_engine_collect_returns_per_trial_fractions(self, spec):
        from repro.sim import CaveYieldKernel

        decoder = decoder_for(spec, make_code("TC", 2, 6))
        engine = MonteCarloEngine(CaveYieldKernel(decoder))
        result = engine.run(123, 5, collect=True)
        assert result.raw["cave"].shape == (123,)
        assert result["cave"].mean == pytest.approx(
            result.raw["cave"].mean(), rel=1e-12
        )
        assert np.all(result.raw["cave"] <= result.raw["electrical"] + 1e-12)


# -- validation consistency ----------------------------------------------------


class TestValidation:
    def test_simulate_cave_yield_rejects_bad_budgets(self, spec):
        code = make_code("TC", 2, 8)
        for kwargs in (
            {"samples": 0},
            {"samples": 100, "max_trials_per_chunk": 0},
            {"samples": 100, "method": "warp"},
        ):
            with pytest.raises(ValueError):
                simulate_cave_yield(spec, code, seed=0, **kwargs)

    def test_engine_rejects_bad_budgets(self):
        engine = MonteCarloEngine(RandomCodesKernel(5, 5))
        with pytest.raises(ValueError):
            engine.run(0)
        with pytest.raises(ValueError):
            MonteCarloEngine(RandomCodesKernel(5, 5), max_trials_per_chunk=0).run(10)

    def test_stochastic_entry_points_reject_bad_budgets(self):
        rng = np.random.default_rng(0)
        for fn in (
            lambda **kw: simulate_random_codes(5, 5, rng=rng, **kw),
            lambda **kw: simulate_random_contacts(5, 5, rng=rng, **kw),
        ):
            with pytest.raises(StochasticError):
                fn(samples=0)
            with pytest.raises(StochasticError):
                fn(samples=10, max_trials_per_chunk=0)
            with pytest.raises(StochasticError):
                fn(samples=10, method="warp")

    def test_stderr_guards_single_sample(self, spec):
        mc = simulate_cave_yield(spec, make_code("TC", 2, 8), samples=1, seed=0)
        assert mc.samples == 1
        assert mc.std_cave_yield == 0.0
        assert mc.stderr == 0.0
        direct = MonteCarloYield(
            samples=1,
            mean_cave_yield=0.5,
            std_cave_yield=0.0,
            mean_electrical_yield=0.5,
            mean_geometric_yield=1.0,
        )
        assert direct.stderr == 0.0
