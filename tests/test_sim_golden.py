"""Seeded golden-regression tests for the Monte-Carlo simulators.

These pin the exact numbers produced by canonical seeded runs so a
future refactor cannot silently drift the figures:

* ``method="loop"`` goldens are bit-compatible with the seed (pre-
  engine) implementation of ``simulate_cave_yield`` — they were
  computed with the original per-trial loop and must keep matching;
* ``method="batched"`` goldens pin the engine's spawned-stream layout
  (seed + stream block), which the reproducibility contract freezes;
* the stochastic-baseline goldens pin the shared-stream draws common
  to both methods.

Tolerance is ``rel=1e-12``: tight enough to catch any change in draws
or masking, loose enough to ignore float summation-order noise.
"""

import numpy as np
import pytest

from repro.codes import make_code
from repro.crossbar.montecarlo import simulate_cave_yield
from repro.crossbar.spec import CrossbarSpec
from repro.decoder.stochastic import (
    simulate_random_codes,
    simulate_random_contacts,
)

GOLDEN_RTOL = 1e-12

#: (family, length, samples, seed) -> (cave, std, electrical, geometric)
LOOP_GOLDENS = {
    ("BGC", 8, 400, 11): (
        0.714375,
        0.05707673571078235,
        0.9127500000000001,
        0.788625,
    ),
    ("TC", 6, 300, 5): (
        0.4081666666666667,
        0.06799792606188773,
        0.7190000000000001,
        0.578,
    ),
}

BATCHED_GOLDENS = {
    ("BGC", 8, 2000, 7): (
        0.7142000000000001,
        0.058566842475233034,
        0.912225,
        0.7896250000000001,
    ),
    ("TC", 6, 2000, 7): (
        0.404725,
        0.07137206288654085,
        0.719125,
        0.5796249999999998,
    ),
    ("AHC", 6, 2000, 7): (
        0.8617,
        0.07369413418112972,
        0.8617,
        1.0,
    ),
}


def _check(mc, expected):
    cave, std, electrical, geometric = expected
    assert mc.mean_cave_yield == pytest.approx(cave, rel=GOLDEN_RTOL)
    assert mc.std_cave_yield == pytest.approx(std, rel=GOLDEN_RTOL)
    assert mc.mean_electrical_yield == pytest.approx(electrical, rel=GOLDEN_RTOL)
    assert mc.mean_geometric_yield == pytest.approx(geometric, rel=GOLDEN_RTOL)


class TestCaveYieldGoldens:
    @pytest.mark.parametrize("point", sorted(LOOP_GOLDENS))
    def test_loop_method_pinned(self, point):
        family, length, samples, seed = point
        mc = simulate_cave_yield(
            CrossbarSpec(),
            make_code(family, 2, length),
            samples=samples,
            seed=seed,
            method="loop",
        )
        _check(mc, LOOP_GOLDENS[point])

    @pytest.mark.parametrize("point", sorted(BATCHED_GOLDENS))
    def test_batched_method_pinned(self, point):
        family, length, samples, seed = point
        mc = simulate_cave_yield(
            CrossbarSpec(),
            make_code(family, 2, length),
            samples=samples,
            seed=seed,
        )
        _check(mc, BATCHED_GOLDENS[point])

    def test_batched_golden_is_chunk_invariant(self):
        """The pinned value must hold for any chunking of the same run."""
        mc = simulate_cave_yield(
            CrossbarSpec(),
            make_code("BGC", 2, 8),
            samples=2000,
            seed=7,
            max_trials_per_chunk=777,
        )
        _check(mc, BATCHED_GOLDENS[("BGC", 8, 2000, 7)])


class TestStochasticBaselineGoldens:
    def test_random_codes_pinned(self):
        batched = simulate_random_codes(20, 64, 4000, np.random.default_rng(3))
        loop = simulate_random_codes(
            20, 64, 4000, np.random.default_rng(3), method="loop"
        )
        assert batched == pytest.approx(0.7391875, rel=GOLDEN_RTOL)
        assert loop == pytest.approx(0.7391875, rel=1e-9)

    def test_random_contacts_pinned(self):
        batched = simulate_random_contacts(10, 8, 4000, np.random.default_rng(3))
        loop = simulate_random_contacts(
            10, 8, 4000, np.random.default_rng(3), method="loop"
        )
        assert batched == pytest.approx(0.963425, rel=GOLDEN_RTOL)
        assert loop == pytest.approx(0.963425, rel=1e-9)
