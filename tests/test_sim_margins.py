"""Margin engine: batched-vs-scalar equivalence, invariance, properties.

The PR-4 contract (see ``repro/sim/margins.py``):

* the broadcast analytic margins are **byte-identical** to the scalar
  per-pair loops for every family/valence/size/k;
* the margin-yield Monte-Carlo produces **identical** sampled yields
  from ``method="loop"`` and ``method="batched"`` (both ride the same
  spawned per-block streams) and is invariant to
  ``max_trials_per_chunk``;
* shrinking ``k_sigma`` never shrinks a margin (hypothesis property);
* the ``repro margins`` CLI output is pinned by seeded goldens.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import make_code
from repro.crossbar.montecarlo import (
    simulate_cave_yield,
    simulate_halfcave_yield,
    simulate_margin_yield,
)
from repro.crossbar.spec import CrossbarSpec
from repro.crossbar.yield_model import decoder_for
from repro.decoder.margins import (
    applied_voltages,
    block_margins,
    margin_report,
    margin_yield,
    select_margins,
)
from repro.decoder.pattern import pattern_matrix
from repro.decoder.variability import dose_count_matrix
from repro.device.threshold import LevelScheme
from repro.fabrication.doping import DopingPlan
from repro.sim.margins import (
    MarginYieldKernel,
    applied_voltage_matrix,
    conflict_matrix,
    pair_block_matrix,
)

DESIGNS = [
    ("TC", 2, 6),
    ("GC", 2, 8),
    ("BGC", 2, 10),
    ("HC", 2, 6),
    ("AHC", 2, 6),
    ("TC", 3, 6),
    ("GC", 3, 6),
]


def margin_inputs(family, n, length, nanowires):
    space = make_code(family, n, length)
    patterns = pattern_matrix(space, nanowires)
    nu = dose_count_matrix(DopingPlan.from_code(space, nanowires).steps)
    return space, patterns, nu, LevelScheme(space.n)


class TestAnalyticEquivalence:
    @pytest.mark.parametrize("family,n,length", DESIGNS)
    @pytest.mark.parametrize("nanowires", [7, 20, 41])
    def test_byte_identical_margins(self, family, n, length, nanowires):
        _, patterns, nu, scheme = margin_inputs(family, n, length, nanowires)
        for k_sigma in (0.0, 1.0, 3.0):
            loop = select_margins(patterns, nu, scheme, k_sigma=k_sigma, method="loop")
            batched = select_margins(
                patterns, nu, scheme, k_sigma=k_sigma, method="batched"
            )
            assert np.array_equal(loop, batched)
            loop = block_margins(patterns, nu, scheme, k_sigma=k_sigma, method="loop")
            batched = block_margins(
                patterns, nu, scheme, k_sigma=k_sigma, method="batched"
            )
            assert np.array_equal(loop, batched)

    @pytest.mark.parametrize("family,n,length", DESIGNS)
    def test_byte_identical_reports_and_yields(self, family, n, length):
        space = make_code(family, n, length)
        assert margin_report(space, 20, method="loop") == margin_report(
            space, 20, method="batched"
        )
        assert margin_yield(space, 20, k_sigma=1.5, method="loop") == margin_yield(
            space, 20, k_sigma=1.5, method="batched"
        )

    def test_unknown_method_rejected(self):
        space = make_code("TC", 2, 6)
        with pytest.raises(ValueError, match="unknown method"):
            margin_report(space, 20, method="vectorised")


class TestBatchedHelpers:
    def test_applied_voltage_matrix_rows(self):
        _, patterns, _, scheme = margin_inputs("GC", 2, 8, 20)
        va = applied_voltage_matrix(patterns, scheme)
        for i in range(patterns.shape[0]):
            assert np.array_equal(va[i], applied_voltages(patterns[i], scheme))

    def test_conflict_matrix_skips_copies_and_diagonal(self):
        patterns = np.array([[0, 1], [1, 0], [0, 1]])
        conflicts = conflict_matrix(patterns)
        assert not conflicts.diagonal().any()
        # wires 0 and 2 are pattern copies -> never in conflict
        assert not conflicts[0, 2] and not conflicts[2, 0]
        assert conflicts[0, 1] and conflicts[1, 2]

    def test_pair_block_matrix_inf_on_non_conflicts(self):
        patterns = np.array([[0, 1], [1, 0], [0, 1]])
        pair = pair_block_matrix(patterns, np.zeros(patterns.shape), LevelScheme(2))
        assert np.isinf(pair.diagonal()).all()
        assert np.isinf(pair[0, 2]) and np.isinf(pair[2, 0])
        assert np.isfinite(pair[0, 1]) and np.isfinite(pair[1, 0])


class TestMarginYieldMonteCarlo:
    SPEC = CrossbarSpec()

    def test_loop_and_batched_identical(self):
        code = make_code("GC", 2, 8)
        batched = simulate_margin_yield(
            self.SPEC, code, samples=400, seed=11, k_sigma=2.0
        )
        loop = simulate_margin_yield(
            self.SPEC, code, samples=400, seed=11, k_sigma=2.0, method="loop"
        )
        assert batched == loop

    def test_chunk_size_invariance(self):
        code = make_code("BGC", 2, 8)
        reference = simulate_margin_yield(
            self.SPEC, code, samples=600, seed=5, stream_block=128
        )
        for chunk in (1, 128, 500, 1 << 20):
            again = simulate_margin_yield(
                self.SPEC,
                code,
                samples=600,
                seed=5,
                stream_block=128,
                max_trials_per_chunk=chunk,
            )
            assert again == reference, chunk

    def test_seed_determinism_and_sensitivity(self):
        code = make_code("TC", 2, 6)
        a = simulate_margin_yield(self.SPEC, code, samples=200, seed=3)
        b = simulate_margin_yield(self.SPEC, code, samples=200, seed=3)
        c = simulate_margin_yield(self.SPEC, code, samples=200, seed=4)
        assert a == b
        assert a != c

    def test_stricter_k_never_raises_yield(self):
        """Same seed, same draws: a higher guard can only unpass wires."""
        code = make_code("BGC", 2, 8)
        yields = [
            simulate_margin_yield(
                self.SPEC, code, samples=300, seed=0, k_sigma=k
            ).mean_margin_yield
            for k in (0.0, 1.0, 2.0, 3.0)
        ]
        assert all(a >= b for a, b in zip(yields, yields[1:]))

    def test_single_sample_sem_guard(self):
        mc = simulate_margin_yield(self.SPEC, make_code("TC", 2, 6), samples=1, seed=0)
        assert mc.samples == 1
        assert mc.stderr == 0.0
        assert mc.std_margin_yield == 0.0

    def test_invalid_inputs_rejected(self):
        code = make_code("TC", 2, 6)
        with pytest.raises(ValueError, match="unknown method"):
            simulate_margin_yield(self.SPEC, code, samples=10, method="serial")
        with pytest.raises(ValueError, match="at least one sample"):
            simulate_margin_yield(self.SPEC, code, samples=0)
        with pytest.raises(ValueError, match="k_sigma"):
            simulate_margin_yield(self.SPEC, code, samples=10, k_sigma=-1.0)

    def test_halfcave_alias_routes_through_batched(self):
        code = make_code("TC", 2, 6)
        alias = simulate_halfcave_yield(self.SPEC, code, samples=50, seed=1)
        assert alias == simulate_cave_yield(self.SPEC, code, samples=50, seed=1)
        loop = simulate_halfcave_yield(
            self.SPEC, code, samples=50, seed=1, method="loop"
        )
        assert loop == simulate_cave_yield(
            self.SPEC, code, samples=50, seed=1, method="loop"
        )

    def test_kernel_rejects_conflict_free_half_cave(self):
        class Degenerate:
            patterns = np.zeros((3, 2), dtype=int)
            nu = np.ones((3, 2))
            scheme = LevelScheme(2)
            sigma_t = 0.05

        with pytest.raises(ValueError, match="no wire has a conflicting"):
            MarginYieldKernel(Degenerate())

    def test_kernel_realised_margins_match_analytic_at_nominal(self):
        """With zero noise the realised margins are the k=0 analytic ones."""
        code = make_code("GC", 2, 8)
        decoder = decoder_for(self.SPEC, code)
        kernel = MarginYieldKernel(decoder, k_sigma=0.0)
        select, block = kernel.realised_margins(kernel.nominal)
        assert np.array_equal(
            select,
            select_margins(
                decoder.patterns, decoder.nu, decoder.scheme, k_sigma=0.0
            ),
        )
        assert np.array_equal(
            block,
            block_margins(
                decoder.patterns, decoder.nu, decoder.scheme, k_sigma=0.0
            ),
        )


class TestKSigmaProperty:
    @given(
        k_lo=st.floats(min_value=0.0, max_value=10.0),
        k_hi=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_shrinking_k_never_shrinks_margins(self, k_lo, k_hi):
        if k_lo > k_hi:
            k_lo, k_hi = k_hi, k_lo
        _, patterns, nu, scheme = margin_inputs("BGC", 2, 8, 20)
        loose_select = select_margins(patterns, nu, scheme, k_sigma=k_lo)
        tight_select = select_margins(patterns, nu, scheme, k_sigma=k_hi)
        assert (tight_select <= loose_select).all()
        loose_block = block_margins(patterns, nu, scheme, k_sigma=k_lo)
        tight_block = block_margins(patterns, nu, scheme, k_sigma=k_hi)
        assert (tight_block <= loose_block).all()

    @given(k=st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_loop_batched_agree_at_any_k(self, k):
        _, patterns, nu, scheme = margin_inputs("GC", 2, 6, 12)
        assert np.array_equal(
            block_margins(patterns, nu, scheme, k_sigma=k, method="loop"),
            block_margins(patterns, nu, scheme, k_sigma=k, method="batched"),
        )
