"""Tests for the batched readout engine (repro.sim.readout).

Covers the contracts of the ``method="batched"`` paths:

* loop-vs-batched equivalence across schemes, bank shapes and segment
  resistances (byte-identical on the dense ideal path, sparse-solver
  tolerance on the distributed path);
* the ``segment_resistance = 0`` limit against the ideal solver;
* block-RHS cell batches identical to per-cell solves;
* seeded goldens for the ``readout`` sweep evaluator;
* the batched CrossbarArray read paths against their scalar loops.
"""

import numpy as np
import pytest

from repro.crossbar.readout import (
    SCHEMES,
    ReadoutError,
    ReadoutModel,
    margin_vs_bank_size,
    max_bank_size,
)
from repro.crossbar.readout_distributed import DistributedReadout
from repro.sim.readout import (
    BankCache,
    DistributedBank,
    IdealBank,
    distributed_laplacian,
    ideal_laplacian,
    scheme_margin_sweep,
    state_digest,
)

SHAPES = ((1, 1), (3, 5), (8, 8), (5, 12))


def random_states(shape, seed=0, density=0.5):
    return np.random.default_rng(seed).random(shape) < density


class TestStamping:
    def test_ideal_laplacian_rows_sum_to_zero(self):
        g = np.random.default_rng(3).random((6, 4)) + 0.1
        lap = ideal_laplacian(g)
        assert np.allclose(lap.sum(axis=0), 0.0)
        assert np.allclose(lap.sum(axis=1), 0.0)
        assert np.allclose(lap, lap.T)

    def test_distributed_laplacian_rows_sum_to_zero(self):
        g = np.random.default_rng(4).random((5, 3)) + 0.1
        lap = distributed_laplacian(g, 2.0, 3.0).toarray()
        assert np.allclose(lap.sum(axis=0), 0.0)
        assert np.allclose(lap, lap.T)

    def test_distributed_node_count(self):
        lap = distributed_laplacian(np.ones((4, 7)), 1.0, 1.0)
        assert lap.shape == (2 * 4 * 7, 2 * 4 * 7)


class TestIdealEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("shape", SHAPES)
    def test_single_cell_byte_identical(self, scheme, shape):
        """The batched dense path reproduces the scalar loop bit for bit."""
        states = random_states(shape, seed=hash(shape) % 1000)
        loop = ReadoutModel(scheme=scheme, method="loop")
        batched = ReadoutModel(scheme=scheme, method="batched")
        rng = np.random.default_rng(1)
        for _ in range(4):
            row = int(rng.integers(shape[0]))
            col = int(rng.integers(shape[1]))
            assert loop.read_current(states, row, col) == batched.read_current(
                states, row, col
            )

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_margin_sweep_byte_identical(self, scheme):
        sizes = (2, 4, 8, 16)
        loop = margin_vs_bank_size(ReadoutModel(scheme=scheme, method="loop"), sizes)
        batched = margin_vs_bank_size(
            ReadoutModel(scheme=scheme, method="batched"), sizes
        )
        assert loop == batched

    def test_scheme_margin_sweep_matches_models(self):
        sizes = (2, 4, 8)
        sweep = scheme_margin_sweep(sizes)
        for scheme in SCHEMES:
            loop = ReadoutModel(scheme=scheme, method="loop")
            assert sweep[scheme] == [loop.sense_margin(s, s) for s in sizes]

    def test_max_bank_size_method_independent(self):
        loop = ReadoutModel(method="loop")
        batched = ReadoutModel(method="batched")
        assert max_bank_size(loop, 0.2) == max_bank_size(batched, 0.2)

    def test_rejects_unknown_method(self):
        with pytest.raises(ReadoutError):
            ReadoutModel(method="weird")

    def test_rejects_bad_sweep_size(self):
        with pytest.raises(ReadoutError):
            scheme_margin_sweep((4, 0))


class TestIdealBlockRhs:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_block_matches_per_cell(self, scheme):
        """One factorized block solve equals k independent solves."""
        states = random_states((12, 9), seed=5)
        model = ReadoutModel(scheme=scheme)
        rng = np.random.default_rng(2)
        cells = np.stack([rng.integers(12, size=25), rng.integers(9, size=25)], axis=1)
        block = model.read_currents(states, cells)
        per_cell = np.array(
            [model.read_current(states, int(r), int(c)) for r, c in cells]
        )
        assert np.allclose(block, per_cell, rtol=1e-9)

    def test_loop_method_read_currents(self):
        states = random_states((4, 4), seed=6)
        model = ReadoutModel(method="loop")
        cells = [(0, 0), (3, 2), (0, 0)]
        got = model.read_currents(states, cells)
        want = [model.read_current(states, r, c) for r, c in cells]
        assert list(got) == want

    def test_single_pair_accepted(self):
        states = random_states((3, 3), seed=7)
        model = ReadoutModel()
        got = model.read_currents(states, (1, 2))
        assert got.shape == (1,)
        assert got[0] == pytest.approx(model.read_current(states, 1, 2))

    def test_rejects_out_of_bank_cells(self):
        model = ReadoutModel()
        with pytest.raises(ReadoutError):
            model.read_currents(np.ones((3, 3), bool), [(0, 3)])

    def test_shared_factorization_reused(self):
        """The float LU is computed once per bank and reused."""
        bank = IdealBank(ReadoutModel().conductances(random_states((6, 6))))
        assert bank._lu is None
        first = bank.read_currents("float", 0.5, [(0, 0)])
        lu = bank._lu
        assert lu is not None
        second = bank.read_currents("float", 0.5, [(0, 0)])
        assert bank._lu is lu
        assert first[0] == second[0]


class TestDistributedEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("segment", (0.0, 50.0, 500.0))
    def test_single_cell_close(self, scheme, segment):
        states = random_states((6, 6), seed=8)
        kwargs = dict(
            base=ReadoutModel(scheme=scheme),
            row_segment_ohm=segment,
            col_segment_ohm=segment,
        )
        loop = DistributedReadout(method="loop", **kwargs)
        batched = DistributedReadout(method="batched", **kwargs)
        for row, col in ((0, 0), (3, 4), (5, 5)):
            a = loop.read_current(states, row, col)
            b = batched.read_current(states, row, col)
            assert b == pytest.approx(a, rel=1e-6)

    def test_zero_segment_limit_matches_ideal(self):
        ideal = ReadoutModel()
        dist = DistributedReadout(base=ideal, row_segment_ohm=0.0, col_segment_ohm=0.0)
        states = np.zeros((6, 6), dtype=bool)
        states[2, 3] = True
        assert dist.read_current(states, 2, 3) == pytest.approx(
            ideal.read_current(states, 2, 3), rel=1e-3
        )

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_block_matches_per_cell(self, scheme):
        states = random_states((7, 5), seed=9)
        dist = DistributedReadout(
            base=ReadoutModel(scheme=scheme),
            row_segment_ohm=200.0,
            col_segment_ohm=120.0,
        )
        rng = np.random.default_rng(3)
        cells = np.stack([rng.integers(7, size=12), rng.integers(5, size=12)], axis=1)
        block = dist.read_currents(states, cells)
        per_cell = np.array(
            [dist.read_current(states, int(r), int(c)) for r, c in cells]
        )
        assert np.allclose(block, per_cell, rtol=1e-9)

    def test_block_matches_loop_reference(self):
        states = random_states((6, 6), seed=10)
        cells = [(0, 0), (2, 4), (5, 1)]
        batched = DistributedReadout(method="batched")
        loop = DistributedReadout(method="loop")
        assert np.allclose(
            batched.read_currents(states, cells),
            loop.read_currents(states, cells),
            rtol=1e-6,
        )

    def test_position_sweep_methods_agree(self):
        kwargs = dict(row_segment_ohm=300.0, col_segment_ohm=300.0)
        loop = DistributedReadout(method="loop", **kwargs)
        batched = DistributedReadout(method="batched", **kwargs)
        for (pa, ia), (pb, ib) in zip(
            loop.position_sweep(8), batched.position_sweep(8)
        ):
            assert pa == pb
            assert ib == pytest.approx(ia, rel=1e-6)

    def test_worst_case_margin_methods_agree(self):
        kwargs = dict(row_segment_ohm=300.0, col_segment_ohm=300.0)
        loop = DistributedReadout(method="loop", **kwargs)
        batched = DistributedReadout(method="batched", **kwargs)
        assert batched.worst_case_margin(8) == pytest.approx(
            loop.worst_case_margin(8), rel=1e-6
        )

    def test_rejects_unknown_method(self):
        with pytest.raises(ReadoutError):
            DistributedReadout(method="weird")

    def test_one_by_one_bank(self):
        states = np.array([[True]])
        for scheme in SCHEMES:
            dist = DistributedReadout(base=ReadoutModel(scheme=scheme))
            got = dist.read_currents(states, [(0, 0)])[0]
            assert got == pytest.approx(
                DistributedReadout(
                    base=ReadoutModel(scheme=scheme), method="loop"
                ).read_current(states, 0, 0),
                rel=1e-9,
            )

    def test_green_factorization_reused(self):
        bank = DistributedBank(
            ReadoutModel().conductances(random_states((5, 5))), 0.01, 0.01
        )
        bank.read_currents("float", 0.5, [(0, 0)])
        green = bank._green
        bank.read_currents("float", 0.5, [(4, 4)])
        assert bank._green is green


class TestReadoutEvaluator:
    def run(self, metric="readout", **params):
        from repro.exp.designpoint import DesignPoint
        from repro.exp.pipeline import SweepParams, run_sweep

        points = [
            DesignPoint.make("TC", 6, nanowires=10),
            DesignPoint.make("TC", 6, nanowires=20),
        ]
        return run_sweep(points, metrics=(metric,), params=SweepParams(**params))

    def test_golden_margins(self):
        """Seeded goldens of the readout evaluator (deterministic)."""
        result = self.run()
        records = result.to_records()
        assert [r["ro_bank_wires"] for r in records] == [20, 40]
        assert records[0]["ro_margin_float"] == pytest.approx(0.096525, rel=1e-6)
        assert records[0]["ro_margin_ground"] == pytest.approx(0.99, rel=1e-9)
        assert records[0]["ro_margin_half_v"] == pytest.approx(
            0.0942857142857143, rel=1e-6
        )
        assert records[1]["ro_margin_float"] == pytest.approx(0.04888125, rel=1e-6)
        assert [r["ro_max_float_bank"] for r in records] == [2, 2]
        assert [r["ro_bank_ok"] for r in records] == [False, False]

    def test_margins_match_direct_models(self):
        result = self.run(ro_r_on=1.0e6, ro_r_off=1.0e8)
        record = result.to_records()[0]
        bank = record["ro_bank_wires"]
        for scheme in SCHEMES:
            model = ReadoutModel(r_on=1.0e6, r_off=1.0e8, scheme=scheme)
            assert record[f"ro_margin_{scheme}"] == model.sense_margin(bank, bank)

    def test_jobs_invariance(self):
        from repro.exp.designpoint import DesignPoint
        from repro.exp.pipeline import run_sweep

        points = [DesignPoint.make("TC", 6, nanowires=10)]
        serial = run_sweep(points, metrics=("readout",), jobs=1)
        assert serial.to_records() == run_sweep(
            points, metrics=("readout",), jobs=2
        ).to_records()


class TestArrayBatchedReads:
    def make_array(self, seed=3):
        from repro.codes.registry import make_code
        from repro.crossbar.array import CrossbarArray
        from repro.crossbar.spec import CrossbarSpec

        spec = CrossbarSpec(raw_kilobytes=0.2)
        space = make_code("TC", 2, 6)
        array = CrossbarArray(spec, space, seed=seed)
        rng = np.random.default_rng(seed)
        side = array.shape[0]
        rows, cols = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
        array.write_pattern(rows.ravel(), cols.ravel(), rng.random(side * side) < 0.5)
        return array

    def accessible_cells(self, array, k=12, seed=4):
        rng = np.random.default_rng(seed)
        side = array.shape[0]
        cells = [
            (r, c)
            for r in range(side)
            for c in range(side)
            if array.is_accessible(r, c)
        ]
        picks = rng.choice(len(cells), size=min(k, len(cells)), replace=True)
        chosen = [cells[p] for p in picks]
        return np.array([r for r, _ in chosen]), np.array([c for _, c in chosen])

    def test_read_bits_matches_scalar(self):
        array = self.make_array()
        rows, cols = self.accessible_cells(array)
        batched = array.read_bits(rows, cols)
        scalar = [array.read_bit(int(r), int(c)) for r, c in zip(rows, cols)]
        assert list(batched) == scalar

    def test_read_margins_matches_scalar(self):
        array = self.make_array()
        rows, cols = self.accessible_cells(array)
        batched = array.read_margins(rows, cols)
        scalar = [array.read_margin(int(r), int(c)) for r, c in zip(rows, cols)]
        assert np.allclose(batched, scalar, rtol=1e-9)

    def test_read_bits_roundtrip(self):
        array = self.make_array()
        rows, cols = self.accessible_cells(array, k=20)
        expected = array._states[rows, cols]
        assert np.array_equal(array.read_bits(rows, cols), expected)

    def test_read_bits_rejects_inaccessible(self):
        from repro.crossbar.array import AddressingFault

        array = self.make_array()
        bad = np.nonzero(~array.defects.row_ok)[0]
        if bad.size == 0:
            pytest.skip("sampled instance has no defective rows")
        rows, cols = self.accessible_cells(array, k=2)
        with pytest.raises(AddressingFault):
            array.read_bits(
                np.concatenate([rows, bad[:1]]),
                np.concatenate([cols, [0]]),
            )

    def test_write_pattern_skips_and_counts(self):
        array = self.make_array()
        rows, cols = self.accessible_cells(array, k=6)
        written = array.write_pattern(
            np.concatenate([rows, [-1]]),
            np.concatenate([cols, [0]]),
            np.ones(rows.size + 1, dtype=bool),
        )
        assert written == rows.size
        assert array._states[rows, cols].all()


class TestBankCacheUnit:
    def test_hit_miss_and_lru_eviction(self):
        cache = BankCache(max_banks=2)
        assert cache.get(b"a", lambda: "A") == "A"
        assert cache.get(b"a", lambda: "other") == "A"
        cache.get(b"b", lambda: "B")
        cache.get(b"c", lambda: "C")  # evicts "a", the least recent
        assert cache.get(b"a", lambda: "A*") == "A*"
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 4
        assert stats["evictions"] == 2
        assert stats["banks"] == len(cache) == 2
        assert stats["hit_rate"] == pytest.approx(0.2)
        cache.clear()
        assert len(cache) == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ReadoutError):
            BankCache(max_banks=0)

    def test_state_digest_keys_content_shape_and_dtype(self):
        a = np.zeros((2, 3), dtype=bool)
        assert state_digest(a) == state_digest(a.copy())
        assert state_digest(a) != state_digest(a.reshape(3, 2))
        assert state_digest(a) != state_digest(a.astype(np.int8))
        b = a.copy()
        b[0, 0] = True
        assert state_digest(a) != state_digest(b)

    def test_state_digest_of_views(self):
        """Digesting a non-contiguous bank view matches its dense copy."""
        big = random_states((8, 8), seed=13)
        view = big[2:6, 1:7]
        assert state_digest(view) == state_digest(view.copy())


class TestBankImmutability:
    """Regression: a mutated-then-read bank cannot serve a stale
    factorization — bank arrays are frozen copies (satellite bugfix)."""

    def test_ideal_bank_arrays_frozen(self):
        bank = IdealBank(ReadoutModel().conductances(random_states((5, 5))))
        bank.read_currents("float", 0.5, [(0, 0)])
        with pytest.raises(ValueError):
            bank.g[0, 0] = 99.0
        with pytest.raises(ValueError):
            bank.lap[0, 0] = 99.0

    def test_distributed_bank_arrays_frozen(self):
        bank = DistributedBank(
            ReadoutModel().conductances(random_states((4, 4))), 1.0e4, 1.0e4
        )
        bank.read_currents("float", 0.5, [(0, 0)])
        with pytest.raises(ValueError):
            bank.g[0, 0] = 99.0
        with pytest.raises(ValueError):
            bank.lap.data[0] = 99.0

    def test_external_mutation_cannot_stale_cached_solves(self):
        """The bank copies its input, so the caller's array stays free."""
        g = ReadoutModel().conductances(random_states((5, 5), seed=11))
        bank = IdealBank(g)
        before = bank.read_currents("float", 0.5, [(2, 2)])[0]
        g[:] = 1.0
        after = bank.read_currents("float", 0.5, [(2, 2)])[0]
        assert after == before
        assert IdealBank(g).read_currents("float", 0.5, [(2, 2)])[0] != before


class TestDegenerateTies:
    """Regression: batched and scalar sensing must agree even when
    R_on/R_off degenerate to (nearly) identical conductances."""

    def run_pair(self, r_off, r_on=1.0e5):
        from repro.codes.registry import make_code
        from repro.crossbar.array import CrossbarArray
        from repro.crossbar.spec import CrossbarSpec

        model = ReadoutModel(r_on=r_on, r_off=r_off)
        spec = CrossbarSpec(raw_kilobytes=0.2)
        space = make_code("TC", 2, 6)
        array = CrossbarArray(spec, space, seed=3, readout=model)
        rng = np.random.default_rng(3)
        side = array.shape[0]
        rows, cols = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
        array.write_pattern(rows.ravel(), cols.ravel(), rng.random(side * side) < 0.5)
        cells = [
            (r, c)
            for r in range(side)
            for c in range(side)
            if array.is_accessible(r, c)
        ][:16]
        rr = np.array([r for r, _ in cells])
        cc = np.array([c for _, c in cells])
        batched = array.read_bits(rr, cc)
        scalar = [array.read_bit(int(r), int(c)) for r, c in cells]
        return batched, scalar

    def test_equal_conductance_tie_reads_off(self):
        """R_off > R_on but 1/R_off == 1/R_on: a perfect tie reads 0."""
        pair = None
        for r_on in (1.0e5, 2.3e5, 3.1e5, 4.7e5, 6.1e5):
            r_off = np.nextafter(r_on, np.inf)
            for _ in range(64):
                if 1.0 / r_off == 1.0 / r_on:
                    pair = (r_on, float(r_off))
                    break
                r_off = np.nextafter(r_off, np.inf)
            if pair:
                break
        assert pair is not None, "no double pair with identical reciprocals"
        batched, scalar = self.run_pair(pair[1], r_on=pair[0])
        assert not batched.any()
        assert list(batched) == scalar

    @pytest.mark.parametrize("gap", (1.0 + 1e-12, 1.0 + 1e-9))
    def test_near_degenerate_methods_agree(self, gap):
        batched, scalar = self.run_pair(1.0e5 * gap)
        assert list(batched) == scalar
