"""Unit tests for the content-addressed result store (repro.store)."""

import json

import pytest

from repro import api
from repro.exp.designpoint import DesignPoint
from repro.store import (
    STORE_ENV_VAR,
    ResultStore,
    default_store,
    reset_store_counters,
    store_counters,
)


@pytest.fixture(autouse=True)
def _fresh_counters():
    reset_store_counters()
    yield
    reset_store_counters()


def make_store(tmp_path, **kw):
    return ResultStore(tmp_path / "store", **kw)


def put_entry(store, tag="a", result=None):
    """Commit one synthetic entry; returns its digest."""
    import hashlib

    from repro.dist.spec import canonical_json

    request = {"v": 1, "kind": "sweep", "tag": tag}
    digest = hashlib.sha256(canonical_json(request).encode()).hexdigest()
    store.put(digest, "sweep", request, result or {"rows": [tag]})
    return digest


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = make_store(tmp_path)
        digest = put_entry(store, result={"rows": [1, 2, 3]})
        assert store.get(digest) == {"rows": [1, 2, 3]}
        assert store.contains(digest)
        assert store_counters()["hits"] == 1
        assert store_counters()["puts"] == 1

    def test_miss_on_unknown_digest(self, tmp_path):
        store = make_store(tmp_path)
        assert store.get("0" * 64) is None
        assert not store.contains("0" * 64)
        assert store_counters()["misses"] == 1

    def test_two_stores_share_one_root(self, tmp_path):
        writer = make_store(tmp_path)
        digest = put_entry(writer)
        reader = make_store(tmp_path)
        assert reader.get(digest) == {"rows": ["a"]}

    def test_entries_survive_reopen(self, tmp_path):
        digest = put_entry(make_store(tmp_path))
        store = make_store(tmp_path)
        assert store.stats()["entries"] == 1
        assert store.live_digests() == [digest]


class TestCorruption:
    def test_truncated_entry_is_a_miss_and_quarantined(self, tmp_path):
        store = make_store(tmp_path)
        digest = put_entry(store)
        path = store.object_path(digest)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.get(digest) is None
        assert store_counters()["corrupt"] == 1
        assert not path.exists()  # quarantined aside
        assert path.with_suffix(".corrupt").exists()

    def test_checksum_mismatch_is_a_miss(self, tmp_path):
        store = make_store(tmp_path)
        digest = put_entry(store, result={"rows": [1.0]})
        path = store.object_path(digest)
        entry = json.loads(path.read_text())
        entry["result"]["rows"] = [2.0]  # tamper without updating checksum
        path.write_text(json.dumps(entry))
        assert store.get(digest) is None
        assert store_counters()["corrupt"] == 1

    def test_digest_mismatch_is_a_miss(self, tmp_path):
        store = make_store(tmp_path)
        digest = put_entry(store)
        other = "f" * 64
        target = store.object_path(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        store.object_path(digest).rename(target)
        assert store.get(other) is None
        assert store_counters()["corrupt"] == 1

    def test_recompute_recommits_after_corruption(self, tmp_path):
        store = make_store(tmp_path)
        req = api.SweepRequest(points=(DesignPoint.make("TC", 6),))
        cold = api.evaluate(req, store=store)
        path = store.object_path(api.request_digest(req))
        path.write_text("{not json")
        recomputed = api.evaluate(req, store=store)  # miss -> recompute -> put
        assert recomputed == cold
        assert store.get(api.request_digest(req)) is not None

    def test_manifest_line_without_file_is_not_live(self, tmp_path):
        store = make_store(tmp_path)
        digest = put_entry(store)
        store.object_path(digest).unlink()  # simulates kill between steps
        assert store.live_digests() == []
        assert store.stats()["entries"] == 0
        assert store.get(digest) is None

    def test_malformed_manifest_lines_skipped(self, tmp_path):
        store = make_store(tmp_path)
        digest = put_entry(store)
        with open(store.root / "manifest.jsonl", "a") as fh:
            fh.write("{truncated\n\n[1,2]\n")
        assert store.live_digests() == [digest]
        assert store.get(digest) is not None

    def test_stray_tmp_debris_is_inert(self, tmp_path):
        store = make_store(tmp_path)
        digest = put_entry(store)
        debris = store.object_path(digest).with_name("deadbeef.json.tmp999")
        debris.write_text("partial")
        assert store.get(digest) is not None
        assert store.stats()["entries"] == 1


class TestEviction:
    def test_oldest_entries_evicted_over_limit(self, tmp_path):
        store = make_store(tmp_path, max_entries=2)
        first = put_entry(store, "a")
        second = put_entry(store, "b")
        third = put_entry(store, "c")
        assert store.live_digests() == [second, third]
        assert store.get(first) is None
        assert store_counters()["evictions"] == 1

    def test_reput_after_eviction(self, tmp_path):
        store = make_store(tmp_path, max_entries=1)
        first = put_entry(store, "a")
        put_entry(store, "b")
        assert store.get(first) is None
        store.put(first, "sweep", {"tag": "a"}, {"rows": ["a"]})
        assert store.get(first) == {"rows": ["a"]}


class TestDefaultStore:
    def test_none_without_configuration(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        assert default_store() is None

    def test_env_var_names_the_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "envstore"))
        store = default_store()
        assert store is not None
        assert store.root == tmp_path / "envstore"

    def test_explicit_root_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "envstore"))
        store = default_store(tmp_path / "explicit")
        assert store.root == tmp_path / "explicit"

    def test_counter_contract(self):
        counters = store_counters()
        assert set(counters) == {"hits", "misses", "puts", "evictions", "corrupt"}
        assert all(isinstance(v, int) for v in counters.values())
