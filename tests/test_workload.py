"""Equivalence and unit tests for the trace-driven workload engine.

The contract under test (see ``repro/workload/memory_batch.py``):

* the batched vectorised executor is **byte-identical** to the scalar
  ``method="loop"`` reference (CrossbarMemory / SecdedCode per access)
  — read values, final stored state, and every per-instance metric;
* results are invariant to ``chunk_size``;
* trace generators are pure functions of their arguments.
"""

import numpy as np
import pytest

from repro.codes import make_code
from repro.crossbar.defects import DefectMap
from repro.crossbar.ecc import SecdedCode, decode_blocks, encode_blocks
from repro.crossbar.spec import CrossbarSpec
from repro.workload import (
    FLEET_METRICS,
    MemoryFleet,
    Trace,
    TraceError,
    exhausted_fraction,
    make_trace,
)

#: Small platform so the scalar loop reference stays fast.
SMALL_SPEC = CrossbarSpec(raw_kilobytes=0.5)
CODE = make_code("BGC", 2, 8)


def small_fleet(instances=3, seed=5, ecc=None):
    return MemoryFleet.sample(SMALL_SPEC, CODE, instances, seed=seed, ecc=ecc)


def assert_runs_equal(a, b):
    assert a.per_instance.keys() == b.per_instance.keys()
    for name in a.per_instance:
        assert np.array_equal(a.per_instance[name], b.per_instance[name]), name
    assert np.array_equal(a.read_bits, b.read_bits)
    assert np.array_equal(a.final_state, b.final_state)


# -- trace generators ----------------------------------------------------------


class TestTraces:
    @pytest.mark.parametrize("kind", ["uniform", "sequential", "zipfian", "bursty"])
    def test_deterministic_per_seed(self, kind):
        a = make_trace(kind, 500, 100, seed=9)
        b = make_trace(kind, 500, 100, seed=9)
        c = make_trace(kind, 500, 100, seed=10)
        assert np.array_equal(a.addresses, b.addresses)
        assert np.array_equal(a.is_write, b.is_write)
        assert np.array_equal(a.values, b.values)
        assert not np.array_equal(a.addresses, c.addresses) or not np.array_equal(
            a.is_write, c.is_write
        )

    @pytest.mark.parametrize("kind", ["uniform", "sequential", "zipfian", "bursty"])
    def test_bounds_and_shape(self, kind):
        t = make_trace(kind, 777, 33, seed=1)
        assert t.accesses == 777
        assert t.reads + t.writes == 777
        assert t.addresses.min() >= 0 and t.addresses.max() < 33

    def test_write_fraction_extremes(self):
        all_reads = make_trace("uniform", 200, 10, write_fraction=0.0, seed=0)
        all_writes = make_trace("uniform", 200, 10, write_fraction=1.0, seed=0)
        assert all_reads.writes == 0
        assert all_writes.reads == 0

    def test_sequential_pattern(self):
        t = make_trace("sequential", 10, 4, seed=0, start=2)
        assert np.array_equal(t.addresses, (2 + np.arange(10)) % 4)

    def test_zipf_is_head_heavy(self):
        t = make_trace("zipfian", 20_000, 1000, seed=3, skew=1.2)
        head = (t.addresses < 10).mean()
        tail = (t.addresses >= 990).mean()
        assert head > 10 * tail

    def test_bursty_has_locality(self):
        t = make_trace("bursty", 20_000, 10_000, seed=3, mean_burst=64)
        unit_steps = (np.diff(t.addresses) == 1).mean()
        baseline = (
        np.diff(make_trace("uniform", 20_000, 10_000, seed=3).addresses) == 1
    ).mean()
        assert unit_steps > 0.5 > baseline

    def test_rejects_bad_parameters(self):
        with pytest.raises(TraceError):
            make_trace("uniform", 0, 10)
        with pytest.raises(TraceError):
            make_trace("uniform", 10, 0)
        with pytest.raises(TraceError):
            make_trace("uniform", 10, 10, write_fraction=1.5)
        with pytest.raises(TraceError):
            make_trace("nope", 10, 10)

    def test_trace_validates_columns(self):
        with pytest.raises(TraceError):
            Trace(
                name="bad",
                addresses=np.array([0, 5]),
                is_write=np.array([True, False]),
                values=np.array([True, False]),
                address_space=3,
            )


# -- vectorised SECDED codecs --------------------------------------------------


class TestBlockCodecs:
    @pytest.mark.parametrize("r", [3, 4, 6])
    def test_encode_matches_scalar(self, r, rng):
        code = SecdedCode(parity_bits=r)
        payloads = rng.integers(0, 2, (20, code.data_bits)).astype(bool)
        blocks = encode_blocks(code, payloads)
        for row, payload in zip(blocks, payloads):
            assert np.array_equal(row, code.encode(payload))

    @pytest.mark.parametrize("errors", [0, 1, 2])
    def test_decode_matches_scalar(self, errors, rng):
        code = SecdedCode(parity_bits=4)
        payloads = rng.integers(0, 2, (50, code.data_bits)).astype(bool)
        blocks = encode_blocks(code, payloads)
        for row in blocks:
            positions = rng.choice(code.block_bits, size=errors, replace=False)
            row[positions] ^= True
        decoded, corrected, uncorrectable = decode_blocks(code, blocks)
        if errors == 0:
            assert np.array_equal(decoded, payloads)
            assert (corrected == -1).all() and not uncorrectable.any()
        elif errors == 1:
            assert np.array_equal(decoded, payloads)
            assert (corrected >= 0).all() and not uncorrectable.any()
        else:
            assert uncorrectable.all()


# -- fleet construction --------------------------------------------------------


class TestFleetSampling:
    def test_deterministic_per_seed(self):
        a, b = small_fleet(seed=7), small_fleet(seed=7)
        assert np.array_equal(a.capacity_bits, b.capacity_bits)

    def test_instance_prefix_stable(self):
        small = small_fleet(instances=2, seed=7)
        large = small_fleet(instances=4, seed=7)
        assert np.array_equal(small.capacity_bits, large.capacity_bits[:2])

    def test_remap_matches_scalar_memory(self):
        """The a-th working crosspoint rule matches CrossbarMemory."""
        from repro.crossbar.memory import CrossbarMemory

        fleet = small_fleet(instances=1, seed=3)
        mem = CrossbarMemory(fleet._maps[0])
        trace = make_trace("uniform", 300, int(fleet.capacity_bits[0]), seed=1)
        result = fleet.run(trace, collect_state=True)
        for j in range(trace.accesses):
            if trace.is_write[j]:
                mem.write(int(trace.addresses[j]), bool(trace.values[j]))
        assert np.array_equal(result.final_state[0], mem.raw_state().ravel())

    def test_rejects_empty_and_mixed_geometry(self):
        with pytest.raises(ValueError):
            MemoryFleet([])
        with pytest.raises(ValueError):
            MemoryFleet(
                [
                    DefectMap(np.ones(4, bool), np.ones(4, bool)),
                    DefectMap(np.ones(5, bool), np.ones(4, bool)),
                ]
            )

    def test_ecc_capacity_accounting(self):
        ecc = SecdedCode(parity_bits=3)
        fleet = small_fleet(ecc=ecc)
        blocks = fleet.capacity_bits // ecc.block_bits
        assert np.array_equal(fleet.address_capacities, blocks)
        assert np.array_equal(fleet.payload_capacity_bits, blocks * ecc.data_bits)


# -- batched vs loop equivalence -----------------------------------------------


class TestEquivalence:
    @pytest.mark.parametrize("kind", ["uniform", "sequential", "zipfian", "bursty"])
    def test_raw_mode_byte_identical(self, kind):
        fleet = small_fleet()
        space = fleet.suggested_address_space() + 40  # force some failures
        trace = make_trace(kind, 3000, space, seed=3)
        batched = fleet.run(
            trace,
            method="batched",
            chunk_size=251,
            collect_reads=True,
            collect_state=True,
        )
        loop = fleet.run(trace, method="loop", collect_reads=True, collect_state=True)
        assert_runs_equal(batched, loop)

    def test_ecc_mode_byte_identical(self):
        fleet = small_fleet(ecc=SecdedCode(parity_bits=3))
        space = fleet.suggested_address_space() + 10
        trace = make_trace("uniform", 1500, space, seed=3)
        for p in (0.0, 0.03):
            batched = fleet.run(
                trace,
                method="batched",
                chunk_size=177,
                seed=9,
                write_error_rate=p,
                collect_reads=True,
                collect_state=True,
            )
            loop = fleet.run(
                trace,
                method="loop",
                seed=9,
                write_error_rate=p,
                collect_reads=True,
                collect_state=True,
            )
            assert_runs_equal(batched, loop)

    def test_raw_mode_error_injection_byte_identical(self):
        fleet = small_fleet()
        trace = make_trace("uniform", 2000, fleet.suggested_address_space(), seed=4)
        batched = fleet.run(
            trace,
            chunk_size=499,
            seed=11,
            write_error_rate=0.05,
            collect_reads=True,
            collect_state=True,
        )
        loop = fleet.run(
            trace,
            method="loop",
            seed=11,
            write_error_rate=0.05,
            collect_reads=True,
            collect_state=True,
        )
        assert_runs_equal(batched, loop)

    @pytest.mark.parametrize("chunk", [1, 7, 64, 1000, 10_000])
    def test_chunk_size_invariance(self, chunk):
        fleet = small_fleet()
        trace = make_trace(
        "zipfian", 3000, fleet.suggested_address_space() + 20, seed=6
    )
        reference = fleet.run(
            trace,
            chunk_size=3000,
            seed=2,
            write_error_rate=0.01,
            collect_reads=True,
            collect_state=True,
        )
        other = fleet.run(
            trace,
            chunk_size=chunk,
            seed=2,
            write_error_rate=0.01,
            collect_reads=True,
            collect_state=True,
        )
        assert_runs_equal(reference, other)

    def test_read_after_write_within_chunk(self):
        """Forwarding: a read sees the last prior write, not the snapshot."""
        dm = DefectMap(np.ones(4, bool), np.ones(4, bool))
        fleet = MemoryFleet([dm])
        trace = Trace(
            name="raw-chain",
            addresses=np.array([3, 3, 3, 3, 3], dtype=np.int64),
            is_write=np.array([True, False, True, False, False]),
            values=np.array([True, False, False, False, False]),
            address_space=16,
        )
        result = fleet.run(trace, chunk_size=5, collect_reads=True)
        # read 0 sees the True write, reads 1-2 see the False overwrite
        assert result.read_bits[0].tolist() == [True, False, False]


# -- metrics -------------------------------------------------------------------


class TestMetrics:
    def test_failure_accounting_hand_built(self):
        """2x2 fully-working instance, capacity 4: addresses >= 4 fail."""
        dm = DefectMap(np.ones(2, bool), np.ones(2, bool))
        fleet = MemoryFleet([dm])
        trace = Trace(
            name="hand",
            addresses=np.array([0, 5, 1, 6, 2], dtype=np.int64),
            is_write=np.array([True, True, False, False, False]),
            values=np.ones(5, bool),
            address_space=8,
        )
        result = fleet.run(trace, collect_reads=True)
        assert result.per_instance["failures"][0] == 2
        assert result.per_instance["failure_rate"][0] == pytest.approx(0.4)
        assert result.per_instance["first_failure_index"][0] == 1
        assert result.per_instance["effective_capacity_bits"][0] == 4
        assert exhausted_fraction(result.per_instance) == 1.0

    def test_no_failures_sentinel(self):
        dm = DefectMap(np.ones(3, bool), np.ones(3, bool))
        fleet = MemoryFleet([dm])
        trace = make_trace("uniform", 50, 9, seed=0)
        result = fleet.run(trace)
        assert result.per_instance["failures"][0] == 0
        assert result.per_instance["first_failure_index"][0] == 50
        assert exhausted_fraction(result.per_instance) == 0.0

    def test_summary_matches_numpy_moments(self):
        fleet = small_fleet()
        trace = make_trace("uniform", 500, fleet.suggested_address_space() + 30, seed=8)
        result = fleet.run(trace)
        for name in FLEET_METRICS:
            values = np.asarray(result.per_instance[name], dtype=float)
            assert result[name].mean == pytest.approx(values.mean())
            assert result[name].std == pytest.approx(values.std(ddof=1))

    def test_ecc_corrected_counts_single_injected_errors(self):
        """One flipped bit per written block is always repaired."""
        ecc = SecdedCode(parity_bits=3)
        side = 16
        dm = DefectMap(np.ones(side, bool), np.ones(side, bool))
        fleet = MemoryFleet([dm], ecc=ecc)
        blocks = int(fleet.address_capacities[0])
        # write every block once, then read every block once
        addresses = np.concatenate([np.arange(blocks), np.arange(blocks)])
        trace = Trace(
            name="ecc-hand",
            addresses=addresses.astype(np.int64),
            is_write=np.concatenate(
                [np.ones(blocks, bool), np.zeros(blocks, bool)]
            ),
            values=np.concatenate([np.ones(blocks, bool), np.zeros(blocks, bool)]),
            address_space=blocks,
        )
        clean = fleet.run(trace, collect_reads=True)
        assert clean.per_instance["corrected"][0] == 0
        assert clean.per_instance["uncorrectable"][0] == 0
        assert clean.read_bits.all()  # every block returns its payload


# -- exp-pipeline integration --------------------------------------------------


class TestWorkloadEvaluator:
    def test_registered_and_runs(self):
        from repro.exp.designpoint import DesignPoint
        from repro.exp.pipeline import EVALUATORS, SweepParams, evaluate_point

        assert "workload" in EVALUATORS
        record = evaluate_point(
            DesignPoint.make("BGC", 8),
            spec=SMALL_SPEC,
            metrics=("workload",),
            params=SweepParams(wl_accesses=500, wl_instances=2),
        )
        assert record["wl_instances"] == 2
        assert 0.0 <= record["wl_failure_rate_mean"] <= 1.0
        assert record["wl_capacity_mean"] > 0

    def test_ecc_knobs_reach_the_fleet(self):
        """wl_ecc + wl_error_rate drive nonzero corrected counts."""
        from repro.exp.designpoint import DesignPoint
        from repro.exp.pipeline import SweepParams, evaluate_point

        record = evaluate_point(
            DesignPoint.make("BGC", 8),
            spec=SMALL_SPEC,
            metrics=("workload",),
            params=SweepParams(
                wl_accesses=2000,
                wl_instances=2,
                wl_ecc=True,
                wl_error_rate=0.02,
            ),
        )
        assert record["wl_corrected_mean"] > 0

    def test_sweep_reproducible_across_jobs(self):
        from repro.exp.designpoint import design_grid
        from repro.exp.pipeline import SweepParams, run_sweep

        points = design_grid(families=("TC", "BGC"), lengths=(6, 8))
        params = SweepParams(wl_accesses=400, wl_instances=2)
        serial = run_sweep(points, ("workload",), spec=SMALL_SPEC, params=params)
        parallel = run_sweep(
            points, ("workload",), spec=SMALL_SPEC, params=params, jobs=2
        )
        assert serial.to_csv_string() == parallel.to_csv_string()


# -- CLI -----------------------------------------------------------------------


class TestMemsimCli:
    def run_cli(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_memsim_table(self, capsys):
        code, out = self.run_cli(
            capsys,
            "--raw-kb",
            "0.5",
            "memsim",
            "BGC",
            "-M",
            "8",
            "--accesses",
            "2000",
            "--instances",
            "2",
            "--seed",
            "4",
        )
        assert code == 0
        assert "effective_capacity_bits" in out
        assert "fleet accesses/s" in out

    def test_memsim_json_and_ecc(self, capsys):
        import json

        code, out = self.run_cli(
            capsys,
            "--raw-kb",
            "0.5",
            "memsim",
            "BGC",
            "-M",
            "8",
            "--accesses",
            "1000",
            "--instances",
            "2",
            "--ecc",
            "--error-rate",
            "0.001",
            "--format",
            "json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["ecc"] is True
        assert "corrected" in payload["metrics"]

    def test_memsim_methods_agree(self, capsys):
        args = (
            "--raw-kb",
            "0.5",
            "memsim",
            "BGC",
            "-M",
            "8",
            "--accesses",
            "1000",
            "--instances",
            "2",
            "--format",
            "json",
        )
        _, batched = self.run_cli(capsys, *args, "--method", "batched")
        _, loop = self.run_cli(capsys, *args, "--method", "loop")
        import json

        lhs, rhs = json.loads(batched), json.loads(loop)
        lhs.pop("accesses_per_second"), rhs.pop("accesses_per_second")
        lhs.pop("method"), rhs.pop("method")
        # the timing section reports wall clock, not results
        lhs.pop("timing"), rhs.pop("timing")
        assert lhs == rhs

    def test_sweep_seed_changes_workload(self, capsys):
        base = (
            "--raw-kb",
            "0.5",
            "sweep",
            "--families",
            "BGC",
            "--lengths",
            "8",
            "--metric",
            "workload",
            "--wl-accesses",
            "300",
            "--wl-instances",
            "2",
            "--format",
            "csv",
        )
        _, a = self.run_cli(capsys, *base, "--seed", "0")
        _, b = self.run_cli(capsys, *base, "--seed", "1")
        _, a2 = self.run_cli(capsys, *base, "--seed", "0")
        assert a == a2
        assert a != b
