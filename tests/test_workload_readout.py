"""Tests for the electrical workload read mode (repro.workload.electrical).

Covers the tentpole contracts of the trace→sneak-path coupling:

* batched-vs-loop byte identity (raw and ECC, with and without write
  errors) on metrics, read values, margins and final state;
* chunk-size invariance of everything except cache diagnostics;
* seeded goldens pinning the misread/margin figures;
* state-keyed bank-cache behaviour (hits on quiescent traffic, LRU
  bound, loop path reporting no cache);
* Sherman-Morrison rank-1 reference updates against re-stamped banks;
* resolution semantics (0 = ideal sensing, misreads are one-sided).
"""

import numpy as np
import pytest

from repro.codes.registry import make_code
from repro.crossbar.ecc import SecdedCode
from repro.crossbar.readout import ReadoutError, ReadoutModel
from repro.crossbar.spec import CrossbarSpec
from repro.sim.readout import DistributedBank, IdealBank
from repro.workload import ELECTRICAL_METRICS, ElectricalReadout, prepare_workload

SPEC = CrossbarSpec(raw_kilobytes=0.2)
SPACE = make_code("TC", 2, 6)


def small_fleet(accesses=160, instances=2, seed=5, write_fraction=0.5, ecc=None):
    return prepare_workload(
        SPEC,
        SPACE,
        trace="zipfian",
        accesses=accesses,
        instances=instances,
        seed=seed,
        write_fraction=write_fraction,
        ecc=ecc,
    )


def assert_equal_runs(a, b, *, compare_cache=False):
    """Byte-identity of two electrical runs (cache stats excluded)."""
    assert set(a.per_instance) == set(b.per_instance)
    for name in a.per_instance:
        assert np.array_equal(a.per_instance[name], b.per_instance[name]), name
    assert np.array_equal(a.read_bits, b.read_bits)
    assert np.array_equal(a.final_state, b.final_state)
    assert np.array_equal(a.margins, b.margins, equal_nan=True)
    assert np.array_equal(a.margin_hist, b.margin_hist)
    assert np.array_equal(a.margin_edges, b.margin_edges)
    if compare_cache:
        assert a.cache == b.cache


COLLECT = dict(collect_reads=True, collect_state=True, collect_margins=True)


class TestLoopEquivalence:
    def test_raw_mode_byte_identical(self):
        fleet, trace = small_fleet()
        ro = ElectricalReadout(resolution=0.55)
        batched = fleet.run(trace, method="batched", chunk_size=37, readout=ro, **COLLECT)
        loop = fleet.run(trace, method="loop", readout=ro, **COLLECT)
        assert_equal_runs(batched, loop)
        assert batched.electrical and loop.electrical
        assert batched.cache is not None
        assert loop.cache is None

    def test_ecc_mode_with_write_errors_byte_identical(self):
        fleet, trace = small_fleet(accesses=80, seed=7, ecc=SecdedCode(3))
        ro = ElectricalReadout(resolution=0.6)
        kw = dict(readout=ro, write_error_rate=0.05, seed=11, **COLLECT)
        batched = fleet.run(trace, method="batched", chunk_size=17, **kw)
        loop = fleet.run(trace, method="loop", **kw)
        assert_equal_runs(batched, loop)
        # the run actually exercised ECC repair and masking
        assert int(batched.per_instance["misread_bits"].sum()) > 0
        assert int(batched.per_instance["ecc_masked_misreads"].sum()) > 0

    def test_half_v_scheme_byte_identical(self):
        fleet, trace = small_fleet(accesses=100, seed=2)
        ro = ElectricalReadout(model=ReadoutModel(scheme="half_v"), resolution=0.4)
        batched = fleet.run(trace, method="batched", chunk_size=29, readout=ro, **COLLECT)
        loop = fleet.run(trace, method="loop", readout=ro, **COLLECT)
        assert_equal_runs(batched, loop)

    def test_loop_model_method_byte_identical(self):
        """A scalar-stamping readout model runs both engines identically."""
        fleet, trace = small_fleet(accesses=60, seed=4)
        ro = ElectricalReadout(model=ReadoutModel(method="loop"), resolution=0.5)
        batched = fleet.run(trace, method="batched", chunk_size=19, readout=ro, **COLLECT)
        loop = fleet.run(trace, method="loop", readout=ro, **COLLECT)
        assert_equal_runs(batched, loop)

    def test_chunk_size_invariance(self):
        fleet, trace = small_fleet()
        ro = ElectricalReadout(resolution=0.55)
        runs = [
            fleet.run(trace, method="batched", chunk_size=cs, readout=ro, **COLLECT)
            for cs in (16, 37, 1000)
        ]
        assert_equal_runs(runs[0], runs[1])
        assert_equal_runs(runs[0], runs[2])

    def test_rejects_unknown_method(self):
        fleet, trace = small_fleet(accesses=10)
        with pytest.raises(ValueError, match="unknown method"):
            fleet.run(trace, method="weird", readout=ElectricalReadout())


class TestSeededGolden:
    def test_misread_and_margin_figures(self):
        """Pinned figures of one seeded run (regression anchor)."""
        fleet, trace = small_fleet(accesses=120, seed=9)
        r = fleet.run(
            trace,
            method="batched",
            readout=ElectricalReadout(resolution=0.55),
            collect_reads=True,
        )
        assert trace.reads == 59 and trace.writes == 61
        assert r.per_instance["sensed_bits"].tolist() == [59, 56]
        assert r.per_instance["misread_bits"].tolist() == [2, 2]
        assert r.per_instance["misread_reads"].tolist() == [2, 2]
        assert r.per_instance["failures"].tolist() == [0, 8]
        assert r.read_bits.sum(axis=1).tolist() == [12, 12]
        assert r.per_instance["margin_min"][0] == pytest.approx(
            0.4858407193181311, rel=1e-12
        )
        assert r.per_instance["margin_mean"][0] == pytest.approx(
            0.7270465247433778, rel=1e-12
        )
        assert r.margin_hist[0].tolist() == [
            0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 10, 8, 11, 17, 11, 0, 0, 0,
        ]
        assert all(name in r.per_instance for name in ELECTRICAL_METRICS)
        assert all(name in r.summary for name in ELECTRICAL_METRICS)


class TestBankCache:
    def test_quiescent_trace_hits(self):
        """Read-only traffic re-reads cached bank states every chunk."""
        fleet, trace = small_fleet(accesses=200, seed=3, write_fraction=0.0)
        r = fleet.run(trace, method="batched", chunk_size=50, readout=ElectricalReadout())
        assert r.cache["hits"] > 0
        assert r.cache["hit_rate"] > 0.0
        assert r.cache["banks"] <= ElectricalReadout().max_banks

    def test_lru_bound_evicts(self):
        fleet, trace = small_fleet(accesses=120, seed=9)
        ro = ElectricalReadout(resolution=0.55, max_banks=4)
        r = fleet.run(trace, method="batched", readout=ro)
        assert r.cache["banks"] <= 4
        assert r.cache["evictions"] > 0

    def test_tiny_cache_results_unchanged(self):
        """Evictions cost speed, never correctness."""
        fleet, trace = small_fleet(accesses=120, seed=9)
        big = fleet.run(
            trace,
            method="batched",
            readout=ElectricalReadout(resolution=0.55),
            **COLLECT,
        )
        tiny = fleet.run(
            trace,
            method="batched",
            readout=ElectricalReadout(resolution=0.55, max_banks=2),
            **COLLECT,
        )
        assert_equal_runs(big, tiny)


class TestResolution:
    def test_zero_resolution_never_misreads(self):
        fleet, trace = small_fleet(accesses=150, seed=6)
        r = fleet.run(trace, method="batched", readout=ElectricalReadout())
        assert int(r.per_instance["misread_bits"].sum()) == 0
        assert int(r.per_instance["misread_reads"].sum()) == 0

    def test_high_resolution_misreads(self):
        fleet, trace = small_fleet(accesses=150, seed=6)
        r = fleet.run(
            trace, method="batched", readout=ElectricalReadout(resolution=0.8)
        )
        assert int(r.per_instance["misread_bits"].sum()) > 0

    def test_misreads_are_one_sided(self):
        """Sneak paths only hide stored ONs; a stored OFF never reads ON."""
        fleet, trace = small_fleet(accesses=150, seed=6)
        ideal = fleet.run(
            trace, method="batched", readout=ElectricalReadout(), collect_reads=True
        )
        lossy = fleet.run(
            trace,
            method="batched",
            readout=ElectricalReadout(resolution=0.8),
            collect_reads=True,
        )
        assert not np.any(lossy.read_bits & ~ideal.read_bits)

    def test_validation(self):
        with pytest.raises(ReadoutError):
            ElectricalReadout(resolution=1.0)
        with pytest.raises(ReadoutError):
            ElectricalReadout(resolution=-0.1)
        with pytest.raises(ReadoutError):
            ElectricalReadout(margin_bins=0)
        with pytest.raises(ReadoutError):
            ElectricalReadout(max_banks=0)

    def test_requires_spec_and_space(self):
        from repro.workload import MemoryFleet

        fleet, trace = small_fleet(accesses=10)
        bare = MemoryFleet(fleet._maps)
        with pytest.raises(ValueError, match="spec/space"):
            bare.run(trace, readout=ElectricalReadout())
        with pytest.raises(TypeError, match="ElectricalReadout"):
            fleet.run(trace, readout=ReadoutModel())

    def test_ideal_run_unchanged_without_readout(self):
        """readout=None keeps the ideal engine's result shape."""
        fleet, trace = small_fleet(accesses=40)
        r = fleet.run(trace, method="batched")
        assert not r.electrical
        assert r.cache is None and r.margins is None
        assert "misread_bits" not in r.per_instance


class TestShermanMorrison:
    def toggled_vs_restamped(self, bank_cls, scheme, **kwargs):
        rng = np.random.default_rng(12)
        model = ReadoutModel(scheme=scheme)
        states = rng.random((9, 9)) < 0.5
        g = model.conductances(states)
        bank = bank_cls(g, **kwargs)
        cells = np.stack([rng.integers(9, size=14), rng.integers(9, size=14)], axis=1)
        measured = bank.read_currents(scheme, model.v_read, cells)
        delta = (1.0 / model.r_on - 1.0 / model.r_off) * np.where(
            states[cells[:, 0], cells[:, 1]], -1.0, 1.0
        )
        updated = bank.toggled_currents(
            scheme, model.v_read, cells, measured, delta
        )
        fresh = np.empty(len(cells))
        for k, (r, c) in enumerate(cells):
            flipped = states.copy()
            flipped[r, c] = not flipped[r, c]
            fresh[k] = bank_cls(model.conductances(flipped), **kwargs).read_currents(
                scheme, model.v_read, [(int(r), int(c))]
            )[0]
        return updated, fresh

    @pytest.mark.parametrize("scheme", ("float", "ground", "half_v"))
    def test_ideal_matches_restamped(self, scheme):
        """The rank-1 closed form equals a full re-stamp, per scheme."""
        updated, fresh = self.toggled_vs_restamped(IdealBank, scheme)
        assert np.allclose(updated, fresh, rtol=1e-9)

    def test_distributed_float_matches_restamped(self):
        updated, fresh = self.toggled_vs_restamped(
            DistributedBank, "float", row_segment_g=2.0e4, col_segment_g=2.0e4
        )
        assert np.allclose(updated, fresh, rtol=1e-6)

    def test_distributed_biased_schemes_rejected(self):
        bank = DistributedBank(np.full((3, 3), 1e-6), 1.0e4, 1.0e4)
        measured = bank.read_currents("ground", 0.5, [(0, 0)])
        with pytest.raises(ReadoutError):
            bank.toggled_currents("ground", 0.5, [(0, 0)], measured, np.array([1e-7]))

    def test_array_dual_reference_uses_rank1(self):
        """read_bits agrees with scalar sensing on a live array (SM path)."""
        from repro.crossbar.array import CrossbarArray

        array = CrossbarArray(SPEC, SPACE, seed=3)
        rng = np.random.default_rng(3)
        side = array.shape[0]
        rows, cols = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
        array.write_pattern(rows.ravel(), cols.ravel(), rng.random(side * side) < 0.5)
        cells = [
            (r, c)
            for r in range(side)
            for c in range(side)
            if array.is_accessible(r, c)
        ][:18]
        rr = np.array([r for r, _ in cells])
        cc = np.array([c for _, c in cells])
        batched = array.read_bits(rr, cc)
        scalar = [array.read_bit(int(r), int(c)) for r, c in cells]
        assert list(batched) == scalar
        assert array.bank_cache_stats()["misses"] > 0
